"""Tests for the Sec 5.3 graph rewrite passes: semantics preserved, fusions fire."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.tfmini as tf
from repro.tfmini.graph import topo_sort


def ops_in(fetches):
    if isinstance(fetches, tf.Node):
        fetches = [fetches]
    return [n.op for n in topo_sort(fetches)]


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestMatmulSumFusion:
    def test_rewrites_to_gemm(self, rng):
        x = tf.constant(rng.normal(size=(5, 3)))
        w = tf.variable(rng.normal(size=(3, 4)), name="w")
        b = tf.variable(rng.normal(size=4), name="b")
        y = tf.add(tf.matmul(x, w), b)
        opt = tf.optimize_graph(y, passes=("matmul_sum",))
        assert "gemm" in ops_in(opt)
        assert "matmul" not in ops_in(opt)
        np.testing.assert_allclose(tf.Session().run(opt), tf.Session().run(y))

    def test_bias_on_left_also_fuses(self, rng):
        x = tf.constant(rng.normal(size=(5, 3)))
        w = tf.variable(rng.normal(size=(3, 4)), name="w")
        b = tf.variable(rng.normal(size=4), name="b")
        y = tf.add(b, tf.matmul(x, w))
        opt = tf.optimize_graph(y, passes=("matmul_sum",))
        assert "gemm" in ops_in(opt)
        np.testing.assert_allclose(tf.Session().run(opt), tf.Session().run(y))

    def test_matrix_plus_matrix_not_fused(self, rng):
        # SUM of two full matrices is not a GEMM bias pattern.
        a = tf.variable(rng.normal(size=(3, 3)), name="a")
        b = tf.variable(rng.normal(size=(3, 3)), name="b")
        y = tf.add(tf.matmul(a, b), b)
        opt = tf.optimize_graph(y, passes=("matmul_sum",))
        assert "gemm" not in ops_in(opt)

    def test_feeds_still_work_after_rewrite(self, rng):
        x = tf.placeholder("x")
        w = tf.variable(rng.normal(size=(3, 4)), name="w")
        b = tf.variable(rng.normal(size=4), name="b")
        y = tf.add(tf.matmul(x, w), b)
        opt = tf.optimize_graph(y, passes=("matmul_sum",))
        xv = rng.normal(size=(2, 3))
        np.testing.assert_allclose(
            tf.Session().run(opt, {x: xv}), xv @ w.value + b.value
        )


class TestConcatSumFusion:
    def test_self_concat_plus_tensor_fuses(self, rng):
        x = tf.constant(rng.normal(size=(6, 4)))
        t = tf.constant(rng.normal(size=(6, 8)))
        y = tf.add(tf.concat(x, x, axis=1), t)
        opt = tf.optimize_graph(y, passes=("concat_sum",))
        assert "concat" not in ops_in(opt)
        assert "gemm" in ops_in(opt)
        np.testing.assert_allclose(tf.Session().run(opt), tf.Session().run(y))

    def test_distinct_concat_inputs_not_fused(self, rng):
        a = tf.constant(rng.normal(size=(6, 4)))
        b = tf.constant(rng.normal(size=(6, 4)))
        t = tf.constant(rng.normal(size=(6, 8)))
        y = tf.add(tf.concat(a, b, axis=1), t)
        opt = tf.optimize_graph(y, passes=("concat_sum",))
        assert "concat" in ops_in(opt)

    def test_ii_matrix_semantics(self, rng):
        # x @ (I, I) must equal concat(x, x) exactly.
        x_val = rng.normal(size=(3, 5))
        x = tf.constant(x_val)
        t = tf.constant(np.zeros((3, 10)))
        y = tf.add(tf.concat(x, x, axis=1), t)
        opt = tf.optimize_graph(y, passes=("concat_sum",))
        np.testing.assert_array_equal(
            tf.Session().run(opt), np.concatenate([x_val, x_val], axis=1)
        )


class TestTanhFusion:
    def _loss_graph(self, rng):
        x = tf.variable(rng.normal(size=(4, 3)), name="x")
        w = tf.variable(rng.normal(size=(3, 3)), name="w")
        y = tf.tanh(tf.matmul(x, w))
        loss = tf.reduce_sum(tf.square(y))
        g = tf.grad(loss, [x])[0]
        return loss, g

    def test_fuses_tanh_tanhgrad_pair(self, rng):
        loss, g = self._loss_graph(rng)
        opt = tf.optimize_graph([loss, g], passes=("tanh",))
        ops = ops_in(opt)
        assert "tanh_fused" in ops
        assert "tanh_grad" not in ops
        sess = tf.Session()
        ref = sess.run([loss, g])
        out = sess.run(opt)
        np.testing.assert_allclose(out[0], ref[0])
        np.testing.assert_allclose(out[1], ref[1])

    def test_forward_only_tanh_untouched(self, rng):
        x = tf.constant(rng.normal(size=(3, 3)))
        y = tf.tanh(x)
        opt = tf.optimize_graph(y, passes=("tanh",))
        assert "tanh" in ops_in(opt)
        assert "tanh_fused" not in ops_in(opt)

    def test_fused_kernel_evaluated_once(self, rng):
        """The fused node is shared: only one tanh_fused evaluation per run."""
        loss, g = self._loss_graph(rng)
        opt = tf.optimize_graph([loss, g], passes=("tanh",))
        sess = tf.Session(profile=True)
        sess.run(opt)
        assert sess.stats.calls["tanh_fused"] == 1


class TestCombinedPipeline:
    def test_all_passes_preserve_full_training_graph(self, rng):
        """Forward + backward of a skip-connected net, all passes applied."""
        x = tf.placeholder("x")
        w1 = tf.variable(rng.normal(size=(4, 8)) * 0.5, name="w1")
        b1 = tf.variable(rng.normal(size=8) * 0.1, name="b1")
        h = tf.add(tf.concat(x, x, axis=1), tf.tanh(tf.add(tf.matmul(x, w1), b1)))
        w2 = tf.variable(rng.normal(size=(8, 1)) * 0.5, name="w2")
        e = tf.reduce_sum(tf.matmul(h, w2))
        gx = tf.grad(e, [x])[0]
        gw = tf.grad(e, [w1, b1, w2])

        fetches = [e, gx] + gw
        opt = tf.optimize_graph(fetches)
        sess = tf.Session()
        xv = rng.normal(size=(7, 4))
        ref = sess.run(fetches, {x: xv})
        out = sess.run(opt, {x: xv})
        for r, o in zip(ref, out):
            np.testing.assert_allclose(o, r, rtol=1e-12, atol=1e-12)
        ops = ops_in(opt)
        assert "gemm" in ops and "tanh_fused" in ops

    @given(seed=st.integers(0, 2**31 - 1), rows=st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_property_rewrite_is_semantics_preserving(self, seed, rows):
        rng = np.random.default_rng(seed)
        x = tf.constant(rng.normal(size=(rows, 3)))
        w = tf.variable(rng.normal(size=(3, 6)), name="w")
        b = tf.variable(rng.normal(size=6), name="b")
        pre = tf.add(tf.matmul(x, w), b)
        act = tf.tanh(pre)
        # mimic an embedding skip layer of doubled width
        skip = tf.add(tf.concat(x, x, axis=1), act)
        loss = tf.reduce_sum(tf.square(skip))
        g = tf.grad(loss, [w])[0]
        opt = tf.optimize_graph([loss, g])
        sess = tf.Session()
        ref = sess.run([loss, g])
        out = sess.run(opt)
        np.testing.assert_allclose(out[0], ref[0], rtol=1e-12)
        np.testing.assert_allclose(out[1], ref[1], rtol=1e-12)

    def test_unknown_pass_raises(self):
        with pytest.raises(KeyError, match="unknown pass"):
            tf.optimize_graph(tf.constant(1.0), passes=("bogus",))


class TestOptimizerUnit:
    def test_adam_reduces_quadratic_loss(self):
        v = tf.variable(np.array([5.0, -3.0]), name="v")
        target = tf.constant(np.array([1.0, 2.0]))
        loss = tf.reduce_sum(tf.square(v - target))
        gnode = tf.grad(loss, [v])[0]
        sess = tf.Session()
        adam = tf.Adam(lr=0.1)
        for _ in range(300):
            adam.apply([v], [sess.run(gnode)])
        np.testing.assert_allclose(v.value, [1.0, 2.0], atol=1e-2)

    def test_exponential_decay_schedule(self):
        sched = tf.ExponentialDecay(start=1e-3, stop=1e-8, decay_steps=100, rate=0.5)
        assert sched(0) == pytest.approx(1e-3)
        assert sched(100) == pytest.approx(5e-4)
        assert sched(200) == pytest.approx(2.5e-4)
        assert sched(10**9) == pytest.approx(1e-8)  # floored

    def test_adam_shape_mismatch_raises(self):
        v = tf.variable(np.zeros(3), name="v")
        adam = tf.Adam(lr=0.1)
        with pytest.raises(ValueError, match="grad shape"):
            adam.apply([v], [np.zeros(4)])

    def test_adam_skips_none_grads(self):
        v = tf.variable(np.ones(2), name="v")
        adam = tf.Adam(lr=0.1)
        adam.apply([v], [None])
        np.testing.assert_array_equal(v.value, np.ones(2))


class TestProfiling:
    def test_stats_accumulate_and_reset(self, rng):
        x = tf.constant(rng.normal(size=(64, 64)))
        y = tf.matmul(x, x)
        sess = tf.Session(profile=True)
        sess.run(y)
        assert sess.stats.calls["matmul"] == 1
        assert sess.stats.flops["matmul"] == 2 * 64 * 64 * 64
        assert sess.stats.total_seconds() > 0
        sess.stats.reset()
        assert sess.stats.total_seconds() == 0

    def test_category_percentages_sum_to_100(self, rng):
        x = tf.constant(rng.normal(size=(32, 16)))
        w = tf.variable(rng.normal(size=(16, 16)), name="w")
        y = tf.reduce_sum(tf.tanh(tf.matmul(x, w)))
        sess = tf.Session(profile=True)
        sess.run(y)
        pct = sess.stats.category_percentages()
        assert sum(pct.values()) == pytest.approx(100.0)
