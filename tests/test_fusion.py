"""Elementwise fusion: fuzzer, counters, backend registry, P110 mutations.

Four layers of confidence in the fused backend's bitwise contract:

- a **randomized fuzzer** builds elementwise DAGs with mixed dtypes (cast
  points), broadcasts (leading extent 1, lower rank, scalars), shared
  subexpressions and fetch-pinned intermediates, then asserts the fused
  plan matches ``Session.run`` bit for bit (warm and steady) and verifies
  P110-clean with the symbolic walk;
- **deterministic counter tests** pin the blocked interpreter's exact tile
  count, the fusion counters' identities, and the fetch-escape topology;
- **registry tests** pin backend resolution order (explicit >
  ``REPRO_PLAN_BACKEND`` > numpy) and the instance-passthrough seam;
- **mutation tests** corrupt each P110 invariant on a compiled fused plan
  and assert the verifier names the corruption — the rule is only worth
  its CI seat if it actually catches broken fusions.
"""

import types

import numpy as np
import pytest

from repro import tfmini as tf
from repro.analysis.plancheck import FeedSpec, verify_plan
from repro.tfmini.backends import (
    FusedBackend,
    KernelBackend,
    NumpyBackend,
    available_backends,
    get_backend,
)
from repro.tfmini.fusion import DEFAULT_TILE_BYTES, default_tile_bytes
from repro.tfmini.ops import (
    add,
    cast,
    mul,
    neg,
    relu,
    reduce_sum,
    scale,
    sigmoid,
    square,
    sub,
    tanh,
)
from repro.tfmini.plan import _MODE_OUT, compile_plan


def _assert_bitwise(a, b, msg=""):
    """True bitwise equality — NaN-safe, unlike ``np.array_equal``."""
    a, b = np.asarray(a), np.asarray(b)
    assert a.shape == b.shape, f"{msg} shape {a.shape} != {b.shape}"
    assert a.dtype == b.dtype, f"{msg} dtype {a.dtype} != {b.dtype}"
    assert a.tobytes() == b.tobytes(), f"{msg} bytes differ"


# --------------------------------------------------------------------------
# Randomized fuzzer
# --------------------------------------------------------------------------

_UNARY = (tanh, sigmoid, neg, relu, square, lambda n: scale(n, 0.5))
_BINARY = (add, sub, mul)


def _random_case(rng):
    """One random elementwise DAG: (fetches, feed_nodes, feeds, spec)."""
    rows = int(rng.choice([33, 64, 257]))
    cols = int(rng.choice([5, 16]))
    # Full-rank, broadcast-row, lower-rank and scalar feed shapes — the
    # blocked interpreter must route each through tiled vs whole correctly.
    shapes = [(rows, cols), (1, cols), (cols,), ()]
    nodes = []  # (node, dtype) with dtype tracked for explicit cast points
    feeds = {}
    for i in range(int(rng.integers(2, 5))):
        shape = shapes[0] if i == 0 else shapes[int(rng.integers(len(shapes)))]
        dtype = np.dtype(np.float64 if rng.random() < 0.5 else np.float32)
        p = tf.placeholder(f"x{i}", dtype=dtype)
        feeds[p] = rng.uniform(-1.0, 1.0, size=shape).astype(dtype)
        nodes.append((p, dtype))
    n_feeds = len(nodes)

    def pick():
        return nodes[int(rng.integers(len(nodes)))]  # reuse => shared subexpr

    for _ in range(int(rng.integers(4, 12))):
        r = rng.random()
        if r < 0.15:
            a, dt = pick()
            dt = np.dtype(np.float32 if dt == np.float64 else np.float64)
            node = cast(a, dt)
        elif r < 0.55:
            a, dt = pick()
            node = _UNARY[int(rng.integers(len(_UNARY)))](a)
        else:
            (a, da), (b, db) = pick(), pick()
            if da != db:
                b = cast(b, da)  # declared cast point: no float-width mixing
            node = _BINARY[int(rng.integers(len(_BINARY)))](a, b)
            dt = da
        nodes.append((node, dt))

    inter = nodes[n_feeds:]
    fetches = [inter[-1][0]]
    for node, _dt in inter[:-1]:  # fetch-pin a few intermediates
        if rng.random() < 0.2 and node not in fetches:
            fetches.append(node)
    feed_nodes = list(feeds)
    spec = {p: FeedSpec(shape=np.asarray(v).shape, dtype=np.asarray(v).dtype)
            for p, v in feeds.items()}
    return fetches, feed_nodes, feeds, spec


def test_fuzz_fused_bitwise_vs_session_and_p110_clean():
    """25 random DAGs: fused plan == Session.run bitwise (warm + steady),
    P110-clean under the symbolic walk, and fusion actually fires on most
    cases (fetch-pinning every intermediate can legitimately disable it)."""
    rng = np.random.default_rng(2020)
    n_fused_cases = 0
    for case in range(25):
        fetches, feed_nodes, feeds, spec = _random_case(rng)
        oracle = tf.Session().run(fetches, feeds)
        plan = compile_plan(fetches, feed_nodes, backend="fused")
        with np.errstate(all="ignore"):
            warm = plan.run(feeds)
            steady = plan.run(feeds)
        for f_idx in range(len(fetches)):
            _assert_bitwise(oracle[f_idx], warm[f_idx], f"case {case} warm")
            _assert_bitwise(oracle[f_idx], steady[f_idx], f"case {case} steady")
        report = plan.verify(spec=spec, check_values=True)
        assert report.ok, f"case {case}:\n{report.summary()}"
        if plan.records_fused():
            n_fused_cases += 1
            assert plan.fused_passes_saved() == (
                plan.records_fused() - plan.fused_chains()
            )
    assert n_fused_cases >= 15, f"fusion fired on only {n_fused_cases}/25"


def test_fuzz_meta_eviction_falls_back_bitwise():
    """Signature churn beyond the group's cache cap evicts warm metadata;
    the blocked path must fall back to the allocating interpreter (still
    bitwise) and re-record so the signature tiles again next run."""
    x = tf.placeholder("x", dtype=np.float64)
    h = tanh(x)
    y = mul(h, square(h))
    plan = compile_plan([y], [x], backend="fused")
    (group,) = plan.fused_groups
    rng = np.random.default_rng(7)
    first = rng.uniform(-1, 1, size=(8, 3))
    plan.run({x: first})  # warm: meta for the first signature recorded
    for i in range(group.max_cached + 4):  # churn: evict the first signature
        plan.run({x: rng.uniform(-1, 1, size=(9 + i, 3))})
    assert len(group._meta) <= group.max_cached
    blocked_before = group.blocked_runs
    out = plan.run({x: first})  # steady at plan level, meta evicted: fallback
    _assert_bitwise(tf.Session().run(y, {x: first}), out[0], "fallback")
    assert group.blocked_runs == blocked_before
    out = plan.run({x: first})  # fallback re-recorded: this run tiles
    _assert_bitwise(tf.Session().run(y, {x: first}), out[0], "re-tiled")
    assert group.blocked_runs == blocked_before + 1


# --------------------------------------------------------------------------
# Deterministic counters
# --------------------------------------------------------------------------

def test_blocked_tile_count_exact():
    """tiles_run advances by exactly min(rows, ceil(nbytes / tile_bytes))
    per steady run, and the warm run never touches the tile loop."""
    rows, cols = 1000, 13
    x = tf.placeholder("x", dtype=np.float64)
    h = tanh(x)
    y = neg(add(h, square(h)))
    backend = FusedBackend(tile_bytes=4096)
    plan = compile_plan([y], [x], backend=backend)
    (group,) = plan.fused_groups
    assert group.tile_bytes == 4096
    rng = np.random.default_rng(1)
    feeds = {x: rng.uniform(-1, 1, size=(rows, cols))}
    oracle = tf.Session().run(y, feeds)

    _assert_bitwise(oracle, plan.run(feeds)[0], "warm")
    assert group.unfused_runs == 1 and group.tiles_run == 0
    _assert_bitwise(oracle, plan.run(feeds)[0], "steady")
    expect = min(rows, -(-(rows * cols * 8) // 4096))
    assert group.tiles_run == expect
    assert group.blocked_runs == 1
    assert group.scratch_nbytes() > 0
    group.release()
    assert group.scratch_nbytes() == 0
    assert group.tiles_run == expect  # counters survive release


def test_fetch_pinned_intermediate_escapes_and_splits_chains():
    """A fetched mid-chain value must escape: the chain splits into two
    groups with the fetch as the first group's escape, both bitwise."""
    x = tf.placeholder("x", dtype=np.float64)
    t = tanh(x)
    mid = add(t, x)
    y = neg(square(mid))
    plan = compile_plan([y, mid], [x], backend="fused")
    assert plan.fused_chains() == 2  # [tanh, add] and [square, neg]
    assert plan.records_fused() == 4
    rng = np.random.default_rng(3)
    feeds = {x: rng.uniform(-1, 1, size=(40, 6))}
    oracle = tf.Session().run([y, mid], feeds)
    for run in (plan.run(feeds), plan.run(feeds)):
        _assert_bitwise(oracle[0], run[0], "y")
        _assert_bitwise(oracle[1], run[1], "mid")
    report = plan.verify(check_values=True)
    assert report.ok, report.summary()


def test_diamond_fuses_into_one_group():
    """Shared subexpressions fuse while every consumer sits in one group."""
    x = tf.placeholder("x", dtype=np.float64)
    a = tanh(x)
    y = add(square(a), neg(a))  # diamond on ``a``
    plan = compile_plan([y], [x], backend="fused")
    assert plan.fused_chains() == 1
    assert plan.records_fused() == 4
    rng = np.random.default_rng(4)
    feeds = {x: rng.uniform(-1, 1, size=(17, 5))}
    plan.run(feeds)
    _assert_bitwise(tf.Session().run(y, feeds), plan.run(feeds)[0], "diamond")


def test_default_tile_bytes_env(monkeypatch):
    monkeypatch.setenv("REPRO_FUSED_TILE_BYTES", "2048")
    assert default_tile_bytes() == 2048
    monkeypatch.setenv("REPRO_FUSED_TILE_BYTES", "not-a-number")
    assert default_tile_bytes() == DEFAULT_TILE_BYTES
    monkeypatch.delenv("REPRO_FUSED_TILE_BYTES")
    assert default_tile_bytes() == DEFAULT_TILE_BYTES


# --------------------------------------------------------------------------
# Backend registry
# --------------------------------------------------------------------------

def test_backend_resolution_order(monkeypatch):
    monkeypatch.delenv("REPRO_PLAN_BACKEND", raising=False)
    assert get_backend(None).name == "numpy"  # default
    monkeypatch.setenv("REPRO_PLAN_BACKEND", "fused")
    assert get_backend(None).name == "fused"  # env
    assert get_backend("numpy").name == "numpy"  # explicit beats env


def test_backend_unknown_name_lists_available():
    with pytest.raises(ValueError, match="available"):
        get_backend("no-such-backend")


def test_backend_instance_passthrough():
    b = FusedBackend(tile_bytes=123)
    assert get_backend(b) is b
    assert isinstance(get_backend("numpy"), NumpyBackend)
    assert set(available_backends()) >= {"numpy", "fused"}
    assert issubclass(FusedBackend, KernelBackend)


# --------------------------------------------------------------------------
# P110 mutation tests
# --------------------------------------------------------------------------

def _fused_chain_plan():
    """A warmed single-group fused plan plus its spec, fresh per mutation."""
    x = tf.placeholder("x", dtype=np.float64)
    h = tanh(x)
    h = add(h, square(h))
    y = reduce_sum(mul(h, neg(h)))  # the reduce stays outside the group
    plan = compile_plan([y], [x], backend="fused")
    rng = np.random.default_rng(11)
    feeds = {x: rng.uniform(-1, 1, size=(32, 4))}
    plan.run(feeds)
    r_idx, rec = next(
        (i, r) for i, r in enumerate(plan._records)
        if r.op == "fused_elementwise"
    )
    spec = {x: FeedSpec(shape=(32, 4), dtype=np.float64)}
    return plan, r_idx, rec, spec


def _p110_messages(plan, spec=None):
    report = verify_plan(plan, spec=spec)
    return [f.message for f in report.by_rule("P110")]


def test_p110_clean_before_mutation():
    plan, _r_idx, _rec, spec = _fused_chain_plan()
    report = verify_plan(plan, spec=spec, check_values=True)
    assert report.ok, report.summary()


def test_p110_non_elementwise_member():
    plan, _r_idx, rec, _spec = _fused_chain_plan()
    m0 = rec.group.members[0]
    rec.group.members[0] = types.SimpleNamespace(
        op="matmul", mode=_MODE_OUT,
        input_slots=m0.input_slots, out_slot=m0.out_slot, attrs={},
    )
    msgs = _p110_messages(plan)
    assert any("is not a fusable" in m for m in msgs), msgs


def test_p110_member_reads_undefined_slot():
    plan, _r_idx, rec, _spec = _fused_chain_plan()
    m1 = rec.group.members[1]
    m1.input_slots = tuple(m1.input_slots) + (10_000,)
    msgs = _p110_messages(plan)
    assert any("no group input or earlier member defines" in m for m in msgs), msgs


def test_p110_outside_read_of_internal_slot():
    plan, r_idx, rec, _spec = _fused_chain_plan()
    internal = rec.group.members[0].out_slot
    other = next(
        r for i, r in enumerate(plan._records)
        if i != r_idx and r.op != "fused_elementwise"
    )
    other.input_slots = tuple(other.input_slots) + (internal,)
    msgs = _p110_messages(plan)
    assert any("reads fused-internal slot" in m for m in msgs), msgs


def test_p110_fetch_pins_internal_slot():
    plan, _r_idx, rec, _spec = _fused_chain_plan()
    internal = rec.group.members[0].out_slot
    plan._fetch_slots = list(plan._fetch_slots) + [internal]
    msgs = _p110_messages(plan)
    assert any("fetch pins fused-internal slot" in m for m in msgs), msgs


def test_p110_record_inputs_mismatch_ext_slots():
    plan, _r_idx, rec, _spec = _fused_chain_plan()
    rec.input_slots = tuple(rec.input_slots) + (rec.input_slots[0],)
    msgs = _p110_messages(plan)
    assert any("do not match" in m for m in msgs), msgs


def test_p110_escape_is_not_last_member():
    plan, _r_idx, rec, _spec = _fused_chain_plan()
    rec.group.members.pop()
    msgs = _p110_messages(plan)
    assert any("is not the last member's output" in m for m in msgs), msgs


def test_p110_dtype_chain_corruption():
    plan, _r_idx, rec, spec = _fused_chain_plan()
    shape, _dtype = rec.group.last_meta[1]
    rec.group.last_meta[1] = (shape, np.dtype(np.float32))
    msgs = _p110_messages(plan, spec=spec)
    assert any("warm run recorded" in m for m in msgs), msgs


def test_p110_record_without_group():
    plan, _r_idx, rec, spec = _fused_chain_plan()
    rec.group = None
    msgs = _p110_messages(plan, spec=spec)
    assert any("carries no group" in m for m in msgs), msgs


def test_p110_float_width_mix_without_cast_point():
    """A group member combining f32 and f64 without a declared cast point
    is flagged — NEP-50 would silently promote, breaking the bitwise
    contract's premise that the warm run decides dtypes once."""
    x32 = tf.placeholder("x32", dtype=np.float32)
    x64 = tf.placeholder("x64", dtype=np.float64)
    y = tanh(add(x32, x64))  # no cast point: add mixes widths
    plan = compile_plan([y], [x32, x64], backend="fused")
    assert plan.records_fused() == 2
    spec = {
        x32: FeedSpec(shape=(8, 3), dtype=np.float32),
        x64: FeedSpec(shape=(8, 3), dtype=np.float64),
    }
    msgs = _p110_messages(plan, spec=spec)
    assert any("mixes float widths" in m for m in msgs), msgs
    # With the cast declared, the same chain verifies clean.
    y2 = tanh(add(cast(x32, np.float64), x64))
    plan2 = compile_plan([y2], [x32, x64], backend="fused")
    report = verify_plan(plan2, spec=spec)
    assert report.ok, report.summary()
