"""Summit machine constants (paper Sec 6.2) and model calibration.

Hardware numbers are taken verbatim from the paper: 4,608 nodes; per node
two POWER9 sockets (515 GFLOPS each) + 6 V100 GPUs (7 TFLOPS fp64 /
14 TFLOPS fp32 each, 900 GB/s HBM); NVLink intra-node; dual-rail EDR
InfiniBand at 25 GB/s per node; non-blocking fat tree.

Three constants calibrate the cost model (see costmodel.py):

* ``gemm_efficiency`` — sustained fraction of GPU peak for the DP network's
  tall-skinny GEMM mix.  The paper reports 52.9-71.2 % per-GEMM efficiency
  for the fitting layers and 38.5 % whole-step %peak at 26K atoms/GPU;
  0.42 (water) / 0.49 (copper, more GEMM-heavy per Fig 3) reproduce Table 4
  and Fig 5.
* ``fixed_step_seconds`` — per-step latency floor (kernel launches, small
  bandwidth-bound ops, MPI latency), anchored on Table 4's smallest
  atoms/GPU row.
* ``ghost_env_seconds`` — per-ghost-atom cost (environment build, format,
  halo traffic), anchored on Table 4's largest row.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SummitMachine:
    """Per-GPU and network characteristics of Summit."""

    n_nodes_total: int = 4608
    gpus_per_node: int = 6
    gpu_fp64_flops: float = 7.0e12
    gpu_fp32_flops: float = 14.0e12
    gpu_membw: float = 900.0e9  # B/s
    cpu_socket_flops: float = 515.0e9
    sockets_per_node: int = 2
    nic_bandwidth: float = 25.0e9  # B/s per node, dual-rail EDR
    mpi_latency: float = 1.5e-6  # s per message
    # calibration constants (see module docstring)
    fixed_step_seconds: float = 5.5e-3
    ghost_env_seconds: float = 1.05e-7

    def node_peak_fp64(self) -> float:
        """43 TFLOPS/node in double precision, as quoted in Sec 6.2."""
        return (
            self.gpus_per_node * self.gpu_fp64_flops
            + self.sockets_per_node * self.cpu_socket_flops
        )

    def peak_fp64(self, n_nodes: int) -> float:
        return n_nodes * self.node_peak_fp64()

    def gpu_peak(self, precision: str) -> float:
        if precision == "double":
            return self.gpu_fp64_flops
        if precision == "mixed":
            return self.gpu_fp32_flops
        raise ValueError(f"unknown precision {precision!r}")


SUMMIT = SummitMachine()
