"""Fig 4: water radial distribution functions, double vs mixed precision.

The paper validates mixed precision by showing g_OO, g_OH and g_HH from MD
driven by the fp32-network model lie on top of the fp64 curves.  This
example runs both trajectories from identical initial conditions and prints
the RDFs and their deviations, plus the Sec 7.1.3 point deviations (energy
per molecule, force RMSD) and the speed/memory ratios.

Run:  python examples/mixed_precision_rdf.py [--steps N]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis.rdf import average_rdf
from repro.analysis.structures import water_box
from repro.dp.pair import DeepPotPair
from repro.md import Langevin, Simulation, boltzmann_velocities
from repro.md.neighbor import fitted_neighbor_list, neighbor_pairs
from repro.zoo import as_mixed_precision, get_water_model


def run_md(model, system, steps: int, label: str):
    sysw = system.copy()
    boltzmann_velocities(sysw, 330.0, seed=11)
    pair = DeepPotPair(model)
    sim = Simulation(
        sysw,
        pair,
        dt=0.0005,
        integrator=Langevin(temperature=330.0, damp=0.1, seed=13),
        neighbor=fitted_neighbor_list(sysw, pair.cutoff),
        trajectory_every=10,
    )
    t0 = time.perf_counter()
    sim.run(steps)
    wall = time.perf_counter() - t0
    print(f"  {label}: {steps} steps in {wall:.1f} s "
          f"({1e3 * wall / steps:.0f} ms/step)")
    return sim, wall


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--molecules", type=int, default=3)
    args = parser.parse_args()

    double = get_water_model()
    mixed = as_mixed_precision(double)
    n = args.molecules
    system = water_box((n, n, n), seed=4)
    print(f"System: {system.n_atoms} atoms "
          f"(paper compares on 12,288 atoms / 4,096 molecules)")

    # --- Sec 7.1.3 point deviations ------------------------------------------
    pi, pj = neighbor_pairs(system, double.config.rcut)
    rd = double.evaluate(system, pi, pj)
    rm = mixed.evaluate(system, pi, pj)
    n_mol = system.n_atoms // 3
    de = abs(rd.energy - rm.energy) / n_mol * 1e3
    f_rmsd = float(np.sqrt(np.mean((rd.forces - rm.forces) ** 2)))
    print(f"Energy deviation:  {de:.2e} meV/molecule  (paper: 0.32 on its "
          f"larger production model)")
    print(f"Force RMSD:        {f_rmsd:.2e} eV/Å       (paper: 0.029)")
    print(f"Parameter memory:  mixed/double = "
          f"{mixed.param_nbytes() / double.param_nbytes():.2f}  (paper: ~0.5)")

    # --- Fig 4 trajectories ---------------------------------------------------
    print("\nRunning the two trajectories:")
    sim_d, wall_d = run_md(double, system, args.steps, "double")
    sim_m, wall_m = run_md(mixed, system, args.steps, "mixed ")
    print(f"  speedup (mixed vs double): {wall_d / wall_m:.2f}x "
          f"(paper: ~1.5x on V100)")

    r_max = 0.45 * float(system.box.lengths.min())
    pairs = {"g_OO": (0, 0), "g_OH": (0, 1), "g_HH": (1, 1)}
    print(f"\nRDFs averaged over {len(sim_d.trajectory)} frames "
          f"(r up to {r_max:.1f} Å):")
    print(f"{'r/Å':>6}", end="")
    for name in pairs:
        print(f" {name + '(d)':>9} {name + '(m)':>9}", end="")
    print()

    curves = {}
    for name, (ta, tb) in pairs.items():
        r, gd = average_rdf(
            sim_d.trajectory, template=system, r_max=r_max, n_bins=30,
            type_a=ta, type_b=tb,
        )
        _, gm = average_rdf(
            sim_m.trajectory, template=system, r_max=r_max, n_bins=30,
            type_a=ta, type_b=tb,
        )
        curves[name] = (r, gd, gm)

    r = curves["g_OO"][0]
    for k in range(len(r)):
        print(f"{r[k]:>6.2f}", end="")
        for name in pairs:
            _, gd, gm = curves[name]
            print(f" {gd[k]:>9.3f} {gm[k]:>9.3f}", end="")
        print()

    print("\nMax |g_double - g_mixed| per pair "
          "(the Fig 4 'perfect agreement' check):")
    for name, (_r, gd, gm) in curves.items():
        print(f"  {name}: {np.abs(gd - gm).max():.3f}")


if __name__ == "__main__":
    main()
