"""Fig 6 — weak scaling: water 25M -> 403M atoms, copper 7M -> 113M atoms,
285 -> 4,560 nodes, double and mixed precision.

Shape targets: both systems scale linearly in node count (the paper calls it
"perfect scaling"); full-machine copper reaches 86.2 PFLOPS double / 137.4
mixed (43% of peak); water reaches 72.6 / 105.4; mixed ≈ 1.5x double.
"""

import pytest

from benchmarks.conftest import print_header
from repro.perfmodel import COPPER_SPEC, SUMMIT, WATER_SPEC, weak_scaling
from repro.perfmodel.scaling import (
    COPPER_WEAK_ATOMS_PER_NODE,
    FIG6_PAPER_COPPER_DOUBLE,
    FIG6_PAPER_WATER_DOUBLE,
    FIG6_WATER_NODES,
    WATER_WEAK_ATOMS_PER_NODE,
)

CURVES = {}


@pytest.mark.parametrize(
    "key,spec,per_node,precision",
    [
        ("water_double", WATER_SPEC, WATER_WEAK_ATOMS_PER_NODE, "double"),
        ("water_mixed", WATER_SPEC, WATER_WEAK_ATOMS_PER_NODE, "mixed"),
        ("copper_double", COPPER_SPEC, COPPER_WEAK_ATOMS_PER_NODE, "double"),
        ("copper_mixed", COPPER_SPEC, COPPER_WEAK_ATOMS_PER_NODE, "mixed"),
    ],
)
def test_weak_curves(benchmark, key, spec, per_node, precision):
    CURVES[key] = benchmark(
        lambda: weak_scaling(spec, per_node, FIG6_WATER_NODES, precision=precision)
    )


def test_zz_report_and_shapes(benchmark):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(CURVES) == 4
    print_header("Fig 6 — weak scaling PFLOPS (model | paper, double)")
    print(f"{'nodes':>6} {'water dbl':>14} {'water mix':>10} "
          f"{'Cu dbl':>14} {'Cu mix':>10}")
    for wd, wm, cd, cm in zip(
        CURVES["water_double"], CURVES["water_mixed"],
        CURVES["copper_double"], CURVES["copper_mixed"],
    ):
        print(
            f"{wd.n_nodes:>6} "
            f"{wd.pflops:>6.1f}|{FIG6_PAPER_WATER_DOUBLE[wd.n_nodes]:<5.1f} "
            f"{wm.pflops:>8.1f}  "
            f"{cd.pflops:>6.1f}|{FIG6_PAPER_COPPER_DOUBLE[cd.n_nodes]:<5.1f} "
            f"{cm.pflops:>8.1f}"
        )
    cu_full_d = CURVES["copper_double"][-1]
    cu_full_m = CURVES["copper_mixed"][-1]
    h2o_full_d = CURVES["water_double"][-1]
    h2o_full_m = CURVES["water_mixed"][-1]
    print(f"\nFull machine: copper {cu_full_d.pflops:.1f}P double (paper 86.2), "
          f"{cu_full_m.pflops:.1f}P mixed (paper 137.4)")
    print(f"              water {h2o_full_d.pflops:.1f}P double (paper 72.6), "
          f"{h2o_full_m.pflops:.1f}P mixed (paper 105.4)")
    print(f"%% of fp64 machine peak (copper double): "
          f"{cu_full_d.percent_of_peak:.1f}%% (paper: 43%%)")
    print(f"TtS copper double: {cu_full_d.time_to_solution:.2e} s/step/atom "
          f"(paper 7.3e-10); water double {h2o_full_d.time_to_solution:.2e} "
          f"(paper 2.7e-10)")

    # paper values
    for p in CURVES["water_double"]:
        assert p.pflops == pytest.approx(FIG6_PAPER_WATER_DOUBLE[p.n_nodes], rel=0.12)
    for p in CURVES["copper_double"]:
        assert p.pflops == pytest.approx(FIG6_PAPER_COPPER_DOUBLE[p.n_nodes], rel=0.12)
    assert cu_full_m.pflops == pytest.approx(137.4, rel=0.12)
    assert h2o_full_m.pflops == pytest.approx(105.4, rel=0.12)

    # linear (perfect) weak scaling
    for key in CURVES:
        for p in CURVES[key]:
            assert p.efficiency > 0.97, key

    # the abstract's 43%-of-peak claim
    assert cu_full_d.percent_of_peak == pytest.approx(43.0, rel=0.10)

    # headline time-to-solution
    assert cu_full_d.time_to_solution == pytest.approx(7.3e-10, rel=0.15)
    assert h2o_full_d.time_to_solution == pytest.approx(2.7e-10, rel=0.15)
    # ~1 ns/day for the 113M-atom copper system
    assert cu_full_d.ns_per_day(COPPER_SPEC.timestep_fs) == pytest.approx(
        1.0, rel=0.35
    )
