"""Tests for the training pipeline and DP-GEN-style active learning."""

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp import (
    ActiveLearner,
    Dataset,
    DeepPot,
    DPConfig,
    LabeledFrame,
    ModelEnsemble,
    TrainConfig,
    Trainer,
    label_frames,
    sample_md_frames,
)
from repro.md.neighbor import neighbor_pairs
from repro.oracles import FlexibleWater


@pytest.fixture(scope="module")
def water_dataset():
    base = water_box((3, 3, 3), seed=0)
    oracle = FlexibleWater(cutoff=4.0)
    frames = sample_md_frames(
        base, oracle, n_frames=6, stride=5, equilibration=20, seed=0
    )
    return label_frames(frames, oracle)


@pytest.fixture(scope="module")
def tiny_cfg():
    return DPConfig.tiny(rcut=4.0)


class TestDataset:
    def test_labels_match_oracle(self, water_dataset):
        oracle = FlexibleWater(cutoff=4.0)
        frame = water_dataset[0]
        res = oracle.compute_dense(frame.system)
        assert frame.energy == pytest.approx(res.energy, rel=1e-12)
        np.testing.assert_allclose(frame.forces, res.forces, atol=1e-12)

    def test_split_preserves_frames(self, water_dataset):
        train, valid = water_dataset.split(0.5, seed=1)
        assert len(train) + len(valid) == len(water_dataset)
        assert len(train) == 3

    def test_energy_bias_lstsq(self):
        """Constructed case with varying composition: E = -2*n0 - 1*n1."""
        from repro.md.box import Box
        from repro.md.system import System

        ds = Dataset()
        for n0, n1 in ((3, 1), (1, 4), (2, 2)):
            n = n0 + n1
            sys = System(
                box=Box([20.0] * 3),
                positions=np.random.default_rng(n).uniform(0, 20, size=(n, 3)),
                types=np.array([0] * n0 + [1] * n1),
                masses=np.array([16.0, 1.0]),
            )
            ds.add(
                LabeledFrame(
                    system=sys,
                    energy=-2.0 * n0 - 1.0 * n1,
                    forces=np.zeros((n, 3)),
                    virial=np.zeros((3, 3)),
                )
            )
        bias = ds.energy_bias(2)
        np.testing.assert_allclose(bias, [-2.0, -1.0], atol=1e-9)

    def test_energy_bias_degenerate_composition_fits_mean(self, water_dataset):
        """Water frames all share one composition (nH = 2 nO), so the count
        matrix is rank-1; the min-norm lstsq solution must still reproduce
        the mean frame energy for that composition."""
        bias = water_dataset.energy_bias(2)
        counts = water_dataset[0].system.type_counts()
        energies = [f.energy for f in water_dataset.frames]
        assert counts @ bias == pytest.approx(np.mean(energies), rel=1e-9)

    def test_descriptor_stats_shapes_and_positivity(self, water_dataset, tiny_cfg):
        davg, dstd = water_dataset.descriptor_stats(tiny_cfg)
        assert davg.shape == (2, 4) and dstd.shape == (2, 4)
        assert np.all(dstd > 0)
        # s-column mean is positive (distances are positive, s >= 0)
        assert np.all(davg[:, 0] > 0)
        # xyz means are identically zero by construction
        np.testing.assert_array_equal(davg[:, 1:], 0.0)

    def test_apply_stats_installs(self, water_dataset, tiny_cfg):
        model = DeepPot(tiny_cfg)
        water_dataset.apply_stats(model)
        assert np.any(model.davg != 0)
        assert np.any(model.e0 != 0)

    def test_empty_dataset_rejected(self, tiny_cfg):
        with pytest.raises(ValueError, match="empty"):
            Trainer(DeepPot(tiny_cfg), Dataset())


class TestTrainer:
    def test_loss_decreases(self, water_dataset, tiny_cfg):
        model = DeepPot(tiny_cfg)
        water_dataset.apply_stats(model)
        trainer = Trainer(
            model,
            water_dataset,
            TrainConfig(n_steps=60, lr_start=2e-3, decay_steps=30, log_every=20),
        )
        first = trainer.step()
        losses = [trainer.step() for _ in range(59)]
        assert np.mean(losses[-10:]) < first

    def test_force_rmse_improves(self, water_dataset, tiny_cfg):
        model = DeepPot(tiny_cfg)
        water_dataset.apply_stats(model)
        trainer = Trainer(
            model,
            water_dataset,
            TrainConfig(n_steps=250, lr_start=3e-3, decay_steps=80, log_every=250),
        )
        rmse_e0, rmse_f0 = trainer.evaluate_errors(max_frames=3)
        trainer.train()
        rmse_e1, rmse_f1 = trainer.evaluate_errors(max_frames=3)
        assert rmse_f1 < rmse_f0
        assert rmse_e1 < rmse_e0

    def test_gradient_matches_fd(self, water_dataset, tiny_cfg):
        """Full-loss gradient (energy + force double backprop) vs FD."""
        model = DeepPot(tiny_cfg)
        water_dataset.apply_stats(model)
        trainer = Trainer(model, water_dataset, TrainConfig(seed=3))
        feeds, _ = trainer._frame_feeds(water_dataset[0])
        out = model.session.run(trainer._fetches, feeds)
        grads = out[3:]
        sess = model.session
        for vi in (0, len(trainer.variables) // 2, len(trainer.variables) - 1):
            v = trainer.variables[vi]
            flat = v.value.reshape(-1)
            eps = 1e-5
            old = flat[0]
            flat[0] = old + eps
            lp = float(sess.run(trainer.node_loss, feeds))
            flat[0] = old - eps
            lm = float(sess.run(trainer.node_loss, feeds))
            flat[0] = old
            num = (lp - lm) / (2 * eps)
            ana = float(np.asarray(grads[vi]).reshape(-1)[0])
            assert ana == pytest.approx(num, rel=1e-4, abs=1e-8), v.name

    def test_prefactor_schedule_moves_toward_limits(self, water_dataset, tiny_cfg):
        model = DeepPot(tiny_cfg)
        trainer = Trainer(
            model, water_dataset, TrainConfig(n_steps=100, decay_steps=10)
        )
        feeds_early, _ = trainer._frame_feeds(water_dataset[0])
        trainer.optimizer.step = 1000  # far along the schedule
        feeds_late, _ = trainer._frame_feeds(water_dataset[0])
        pe_early = feeds_early[trainer.ph_pref_e]
        pe_late = feeds_late[trainer.ph_pref_e]
        pf_early = feeds_early[trainer.ph_pref_f]
        pf_late = feeds_late[trainer.ph_pref_f]
        assert pe_late > pe_early  # energy weight grows
        assert pf_late < pf_early  # force weight decays

    def test_history_records(self, water_dataset, tiny_cfg):
        model = DeepPot(tiny_cfg)
        water_dataset.apply_stats(model)
        trainer = Trainer(
            model, water_dataset, TrainConfig(n_steps=20, log_every=10)
        )
        trainer.train()
        assert len(trainer.history) >= 2
        assert trainer.history[-1].step == 20


class TestActiveLearning:
    def test_force_deviation_zero_for_identical_models(self, water_dataset, tiny_cfg):
        ens = ModelEnsemble(tiny_cfg, n_models=2)
        # clone parameters
        for va, vb in zip(
            ens.models[0].trainable_variables(), ens.models[1].trainable_variables()
        ):
            vb.assign(va.value.copy())
        ens.models[1].set_stats(ens.models[0].davg, ens.models[0].dstd, ens.models[0].e0)
        dev = ens.force_deviation(water_dataset[0].system)
        assert dev == pytest.approx(0.0, abs=1e-12)

    def test_force_deviation_positive_for_different_models(
        self, water_dataset, tiny_cfg
    ):
        ens = ModelEnsemble(tiny_cfg, n_models=2)
        dev = ens.force_deviation(water_dataset[0].system)
        assert dev > 0

    def test_batched_deviation_matches_per_frame_screen(
        self, water_dataset, tiny_cfg
    ):
        """The one-batched-call-per-model screen returns exactly the values
        of frame-by-frame evaluation (batch-composition independence)."""
        ens = ModelEnsemble(tiny_cfg, n_models=3)
        frames = [water_dataset[i].system for i in range(3)]
        batched = ens.force_deviations(frames)
        assert batched.shape == (3,)
        for frame, dev in zip(frames, batched):
            pi, pj = neighbor_pairs(frame, tiny_cfg.rcut)
            forces = np.stack(
                [m.evaluate(frame, pi, pj).forces for m in ens.models]
            )
            mean = forces.mean(axis=0)
            var = ((forces - mean) ** 2).mean(axis=0).sum(axis=1)
            assert dev == np.sqrt(var).max()
        # each member ran the whole stack as ONE batched evaluation
        for engine in ens.engines:
            assert engine.batch_evaluations == 1
            assert engine.frames_evaluated == 3
        assert ens.force_deviations([]).shape == (0,)

    def test_deviation_chunking_is_invisible(self, water_dataset, tiny_cfg):
        """Bounding the batch size (scratch-memory cap on huge harvests)
        must not change a single deviation value — batch-composition
        independence makes chunked and unchunked screens bitwise equal."""
        ens = ModelEnsemble(tiny_cfg, n_models=2)
        frames = [water_dataset[i].system for i in range(3)]
        whole = ens.force_deviations(frames)
        chunked = ens.force_deviations(frames, chunk=2)
        assert np.array_equal(whole, chunked)
        with pytest.raises(ValueError):
            ens.force_deviations(frames, chunk=0)

    def test_deviation_screen_reuses_engine_scratch(self, water_dataset, tiny_cfg):
        ens = ModelEnsemble(tiny_cfg, n_models=2)
        frames = [water_dataset[i].system for i in range(2)]
        ens.force_deviations(frames)  # warm-up allocates the pools
        counts = [e.scratch.alloc_count for e in ens.engines]
        ens.force_deviations(frames)
        assert [e.scratch.alloc_count for e in ens.engines] == counts

    def test_selection_windows(self, water_dataset, tiny_cfg):
        ens = ModelEnsemble(tiny_cfg, n_models=2)
        learner = ActiveLearner(
            ensemble=ens,
            oracle=FlexibleWater(cutoff=4.0),
            trust_lo=0.0,  # everything is at least a candidate
            trust_hi=np.inf,
        )
        frames = [water_dataset[i].system for i in range(3)]
        candidates, stats = learner.select(frames)
        assert stats["candidate"] == 3 and len(candidates) == 3
        # a generator harvest must work too (select iterates frames twice)
        candidates, stats = learner.select(f for f in frames)
        assert stats["candidate"] == 3 and len(candidates) == 3
        learner.trust_lo = np.inf  # now everything is "accurate"
        candidates, stats = learner.select(frames)
        assert stats["accurate"] == 3 and not candidates

    def test_iteration_grows_dataset(self, water_dataset, tiny_cfg):
        ens = ModelEnsemble(tiny_cfg, n_models=2)
        ds = Dataset(list(water_dataset.frames))
        n0 = len(ds)
        learner = ActiveLearner(
            ensemble=ens,
            oracle=FlexibleWater(cutoff=4.0),
            trust_lo=0.0,
            trust_hi=np.inf,
            md_steps=10,
            md_stride=5,
        )
        stats = learner.iteration(
            ds, water_dataset[0].system, TrainConfig(n_steps=5, log_every=5)
        )
        assert len(ds) > n0
        assert stats["n_added"] == 2
