"""Integration tests for integrators, thermostats, thermo, deform, simulation."""

import numpy as np
import pytest

from repro.analysis.structures import _FCC_BASIS, fcc_lattice
from repro.md import (
    Berendsen,
    Deform,
    Langevin,
    NeighborList,
    Simulation,
    System,
    boltzmann_velocities,
)
from repro.md.box import Box
from repro.md.lj import LennardJones
from repro.md.thermo import compute_pressure, compute_thermo
from repro.oracles import SuttonChenEAM
from repro.units import EVA3_TO_BAR


def short_argon():
    """LJ argon with a shorter cutoff so 3-cell test boxes satisfy min-image."""
    return LennardJones(epsilon=0.0104, sigma=3.4, cutoff=5.5)


def lj_fcc_system(n=3, a_lat=5.26, temperature=40.0, seed=0):
    grid = np.stack(
        np.meshgrid(*[np.arange(n)] * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3)
    pos = (grid[:, None, :] + _FCC_BASIS[None]).reshape(-1, 3) * a_lat
    sys = System(
        box=Box([n * a_lat] * 3),
        positions=pos,
        types=np.zeros(len(pos), dtype=np.int64),
        masses=np.array([39.948]),
        type_names=["Ar"],
    )
    boltzmann_velocities(sys, temperature, seed=seed)
    return sys


class TestVelocityInit:
    def test_target_temperature_exact(self):
        sys = lj_fcc_system(temperature=120.0)
        assert sys.temperature() == pytest.approx(120.0, rel=1e-10)

    def test_com_momentum_zero(self):
        sys = lj_fcc_system(temperature=120.0)
        m = sys.atom_masses()
        p = (m[:, None] * sys.velocities).sum(axis=0)
        np.testing.assert_allclose(p, 0.0, atol=1e-9)

    def test_seed_reproducible(self):
        a = lj_fcc_system(seed=5)
        b = lj_fcc_system(seed=5)
        np.testing.assert_array_equal(a.velocities, b.velocities)


class TestNVE:
    def test_energy_conservation(self):
        sys = lj_fcc_system(temperature=40.0)
        sim = Simulation(sys, short_argon(), dt=0.002, thermo_every=5)
        sim.run(200)
        e = sim.thermo.column("total_energy")
        drift = (e.max() - e.min()) / sys.n_atoms
        assert drift < 5e-5  # eV/atom over 0.4 ps

    def test_momentum_conservation(self):
        sys = lj_fcc_system(temperature=40.0)
        sim = Simulation(sys, short_argon(), dt=0.002)
        sim.run(100)
        m = sys.atom_masses()
        p = (m[:, None] * sys.velocities).sum(axis=0)
        np.testing.assert_allclose(p, 0.0, atol=1e-8)

    def test_time_reversibility(self):
        """Running forward then with negated velocities returns to the start."""
        sys = lj_fcc_system(temperature=40.0)
        start = sys.positions.copy()
        sim = Simulation(sys, short_argon(), dt=0.002)
        sim.run(50)
        sys.velocities *= -1.0
        sim2 = Simulation(sys, short_argon(), dt=0.002)
        sim2.run(50)
        disp = sys.box.minimum_image(sys.positions - start)
        assert np.abs(disp).max() < 1e-8

    def test_force_evaluation_count(self):
        """500 steps -> 501 evaluations, as in the paper's Sec 6.1."""
        sys = lj_fcc_system()
        sim = Simulation(sys, short_argon(), dt=0.002)
        sim.run(20)
        assert sim.force_evaluations == 21

    def test_neighbor_rebuild_cadence(self):
        sys = lj_fcc_system(temperature=5.0)
        nl = NeighborList(cutoff=5.5, skin=2.0, rebuild_every=10)
        sim = Simulation(sys, short_argon(), dt=0.002, neighbor=nl)
        sim.run(25)
        # initial build + steps 10 and 20
        assert nl.n_builds == 3


class TestThermostats:
    def test_langevin_reaches_target(self):
        sys = lj_fcc_system(temperature=10.0, seed=1)
        sim = Simulation(
            sys,
            short_argon(),
            dt=0.002,
            integrator=Langevin(temperature=80.0, damp=0.05, seed=3),
            thermo_every=10,
        )
        sim.run(600)
        temps = sim.thermo.column("temperature")[-20:]
        assert abs(temps.mean() - 80.0) < 12.0

    def test_berendsen_reaches_target(self):
        sys = lj_fcc_system(temperature=10.0, seed=2)
        sim = Simulation(
            sys,
            short_argon(),
            dt=0.002,
            integrator=Berendsen(temperature=60.0, tau=0.05),
            thermo_every=10,
        )
        sim.run(400)
        temps = sim.thermo.column("temperature")[-10:]
        assert abs(temps.mean() - 60.0) < 10.0


class TestThermoAndPressure:
    def test_ideal_gas_pressure(self):
        """With no interactions, P must equal N kB T / V exactly."""
        rng = np.random.default_rng(0)
        n = 200
        sys = System(
            box=Box([20.0] * 3),
            positions=rng.uniform(0, 20, size=(n, 3)),
            types=np.zeros(n, dtype=np.int64),
            masses=np.ones(1),
        )
        boltzmann_velocities(sys, 300.0, seed=0, remove_drift=False, rescale_exact=True)
        p = compute_pressure(sys, np.zeros((3, 3)))
        # 3N dof in the formula vs 3N-3 in temperature: compare via KE.
        ke = sys.kinetic_energy()
        expected = 2 * ke / (3 * sys.box.volume) * EVA3_TO_BAR
        assert p == pytest.approx(expected, rel=1e-12)

    def test_thermo_row_fields(self):
        sys = lj_fcc_system()
        row = compute_thermo(sys, potential_energy=-1.5, virial=np.zeros((3, 3)), step=40, dt=0.002)
        assert row.step == 40
        assert row.time_ps == pytest.approx(0.08)
        assert row.total_energy == pytest.approx(row.kinetic_energy - 1.5)

    def test_thermo_log_cadence(self):
        sys = lj_fcc_system()
        sim = Simulation(sys, short_argon(), dt=0.002, thermo_every=20)
        sim.run(60)
        steps = sim.thermo.column("step")
        np.testing.assert_array_equal(steps, [0, 20, 40, 60])


class TestDeform:
    def test_strain_ramp_linear(self):
        d = Deform(axis=2, strain_rate=1e-3, start_step=100)
        assert d.strain_at(50, dt=1.0) == 0.0
        assert d.strain_at(200, dt=1.0) == pytest.approx(0.1)

    def test_apply_scales_box_and_positions(self):
        sys = lj_fcc_system()
        L0 = sys.box.lengths[2]
        z0 = sys.positions[:, 2].copy()
        d = Deform(axis=2, strain_rate=0.05)
        d.apply(sys, step=1, dt=1.0)
        assert sys.box.lengths[2] == pytest.approx(L0 * 1.05)
        np.testing.assert_allclose(sys.positions[:, 2], z0 * 1.05)

    def test_no_compounding_error(self):
        sys = lj_fcc_system()
        L0 = sys.box.lengths[2]
        d = Deform(axis=2, strain_rate=1e-3)
        for step in range(1, 101):
            d.apply(sys, step, dt=1.0)
        assert sys.box.lengths[2] == pytest.approx(L0 * 1.1, rel=1e-12)

    def test_bad_axis_raises(self):
        with pytest.raises(ValueError):
            Deform(axis=3)


class TestEAMDynamics:
    def test_fcc_is_stable_at_low_temperature(self):
        sys = fcc_lattice((5, 5, 5))
        boltzmann_velocities(sys, 50.0, seed=0)
        nl = NeighborList(cutoff=7.5, skin=1.0, rebuild_every=10)
        sim = Simulation(sys, SuttonChenEAM(), dt=0.002, thermo_every=10, neighbor=nl)
        sim.run(100)
        e = sim.thermo.column("total_energy")
        assert (e.max() - e.min()) / sys.n_atoms < 2e-4
        # atoms stay near lattice sites (no melting at 50 K)
        assert sim.thermo.column("temperature")[-1] < 120.0

    def test_cohesive_energy_close_to_copper(self):
        sys = fcc_lattice((5, 5, 5))
        res = SuttonChenEAM().compute_dense(sys)
        e_per_atom = res.energy / sys.n_atoms
        assert -3.8 < e_per_atom < -3.0  # experimental Cu: -3.49 eV/atom

    def test_lattice_near_equilibrium(self):
        """|P| of the perfect crystal at the SC lattice constant is modest."""
        sys = fcc_lattice((5, 5, 5))
        res = SuttonChenEAM().compute_dense(sys)
        p = compute_pressure(sys, res.virial)
        assert abs(p) < 5e4  # bar
