"""Radial distribution functions (Fig 4: g_OO, g_OH, g_HH of liquid water)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.md.neighbor import neighbor_pairs
from repro.md.system import System


def radial_distribution(
    system: System,
    r_max: float,
    n_bins: int = 100,
    type_a: Optional[int] = None,
    type_b: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """g_ab(r) for a single configuration.

    Normalised so an ideal gas gives g = 1.  ``type_a``/``type_b`` of ``None``
    means "all atoms".  Returns (bin_centers, g).
    """
    if r_max * 2 > system.box.lengths.min():
        raise ValueError("r_max must be at most half the smallest box edge")
    pi, pj = neighbor_pairs(system, r_max)
    ti, tj = system.types[pi], system.types[pj]

    if type_a is None and type_b is None:
        mask = np.ones(len(pi), dtype=bool)
        n_a = n_b = system.n_atoms
        same = True
    else:
        same = type_a == type_b
        mask = ((ti == type_a) & (tj == type_b)) | ((ti == type_b) & (tj == type_a))
        counts = system.type_counts()
        n_a = int(counts[type_a])
        n_b = int(counts[type_b])

    disp = system.box.minimum_image(
        system.positions[pj[mask]] - system.positions[pi[mask]]
    )
    r = np.sqrt(np.einsum("ij,ij->i", disp, disp))

    edges = np.linspace(0.0, r_max, n_bins + 1)
    hist, _ = np.histogram(r, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    volume = system.box.volume

    # Half pair list -> each unordered pair counted once; expected count for
    # an ideal gas is (n_a*n_b[ - n_a if same]) / 2 * shell/V * 2 ... collapse:
    if same:
        n_pairs = n_a * (n_a - 1) / 2.0
    else:
        n_pairs = n_a * n_b
    expected = n_pairs * shell_vol / volume
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(expected > 0, hist / expected, 0.0)
    return centers, g


def average_rdf(
    frames: Sequence[System] | Sequence[np.ndarray],
    template: Optional[System] = None,
    r_max: float = 6.0,
    n_bins: int = 100,
    type_a: Optional[int] = None,
    type_b: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Average g(r) over trajectory frames.

    ``frames`` may be System objects or raw (N,3) position arrays, in which
    case ``template`` supplies box/types.
    """
    acc = None
    centers = None
    count = 0
    for frame in frames:
        if isinstance(frame, System):
            sys_f = frame
        else:
            if template is None:
                raise ValueError("position frames require a template System")
            sys_f = template.copy()
            sys_f.positions = np.asarray(frame, dtype=np.float64)
        centers, g = radial_distribution(sys_f, r_max, n_bins, type_a, type_b)
        acc = g if acc is None else acc + g
        count += 1
    if count == 0:
        raise ValueError("no frames given")
    return centers, acc / count
