"""Tests for the Sec 5.2.1 neighbor layout and the Sec 5.2.2 64-bit codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.structures import water_box
from repro.dp.nlist_fmt import (
    PAD,
    compress_entries,
    decompress_entries,
    format_neighbors,
    format_neighbors_baseline,
)
from repro.md.box import Box
from repro.md.neighbor import neighbor_pairs
from repro.md.system import System


@pytest.fixture
def water_sys():
    return water_box((4, 4, 4), seed=3)


def random_binary_system(n, box_len, seed):
    rng = np.random.default_rng(seed)
    return System(
        box=Box([box_len] * 3),
        positions=rng.uniform(0, box_len, size=(n, 3)),
        types=rng.integers(0, 2, size=n),
        masses=np.array([16.0, 1.0]),
    )


class TestCodec:
    @given(
        t=st.integers(0, 9999),
        d=st.floats(0.0, 99.9999999, allow_nan=False),
        j=st.integers(0, 99999),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, t, d, j):
        key = compress_entries(np.array([t]), np.array([d]), np.array([j]))
        t2, d2, j2 = decompress_entries(key)
        assert t2[0] == t
        assert j2[0] == j
        assert abs(d2[0] - d) < 1e-7  # distance quantized at 1e-8 Å

    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(2, 200),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_key_order_matches_record_order(self, seed, n):
        """Sorting scalar keys == sorting (type, dist, index) records when
        distances are separated by more than the quantum."""
        rng = np.random.default_rng(seed)
        types = rng.integers(0, 3, size=n)
        # distances on a coarse grid -> no quantization ties
        dists = rng.integers(1, 10**6, size=n).astype(np.float64) * 1e-4
        idx = rng.permutation(n)
        keys = compress_entries(types, dists, idx)
        by_key = np.argsort(keys)
        by_rec = np.lexsort((idx, dists, types))
        np.testing.assert_array_equal(by_key, by_rec)

    def test_index_overflow_raises(self):
        with pytest.raises(ValueError, match="5-digit"):
            compress_entries(np.array([0]), np.array([1.0]), np.array([100000]))

    def test_distance_overflow_raises(self):
        with pytest.raises(ValueError, match="10-digit"):
            compress_entries(np.array([0]), np.array([100.0]), np.array([0]))

    def test_type_overflow_raises(self):
        with pytest.raises(ValueError, match="4-digit"):
            compress_entries(np.array([10**4]), np.array([1.0]), np.array([0]))

    def test_negative_index_raises(self):
        with pytest.raises(ValueError, match="negative"):
            compress_entries(np.array([0]), np.array([1.0]), np.array([-1]))

    def test_fields_do_not_collide(self):
        """Adjacent field values map to distinct, ordered keys."""
        keys = compress_entries(
            np.array([1, 1, 2]),
            np.array([99.99999999, 0.0, 0.0]),
            np.array([99999, 0, 0]),
        )
        assert keys[0] < keys[2]  # max dist+index of type 1 < min of type 2


class TestFormatNeighbors:
    def _fmt(self, sys, sel=(8, 16), rcut=4.0, **kw):
        pi, pj = neighbor_pairs(sys, rcut)
        return format_neighbors(sys, pi, pj, rcut, sel, **kw)

    def test_padding_marker(self, water_sys):
        fmt = self._fmt(water_sys)
        assert np.any(fmt.nlist == PAD)
        assert fmt.nlist.shape == (water_sys.n_atoms, 24)

    def test_type_blocks_are_homogeneous(self, water_sys):
        fmt = self._fmt(water_sys)
        slot_t = fmt.slot_types()
        for i in range(fmt.nloc):
            for jj in range(fmt.nnei):
                j = fmt.nlist[i, jj]
                if j != PAD:
                    assert water_sys.types[j] == slot_t[jj]

    def test_distance_sorted_within_blocks(self, water_sys):
        fmt = self._fmt(water_sys)
        pos = water_sys.positions
        box = water_sys.box
        for i in range(min(fmt.nloc, 40)):
            for t, s in enumerate(fmt.sel):
                block = fmt.nlist[i, fmt.sel_start[t] : fmt.sel_start[t] + s]
                block = block[block != PAD]
                d = np.linalg.norm(
                    box.minimum_image(pos[block] - pos[i]), axis=1
                )
                assert np.all(np.diff(d) >= -1e-7)  # codec quantum tolerance

    def test_real_slots_before_padding(self, water_sys):
        fmt = self._fmt(water_sys)
        for i in range(fmt.nloc):
            for t, s in enumerate(fmt.sel):
                block = fmt.nlist[i, fmt.sel_start[t] : fmt.sel_start[t] + s]
                seen_pad = False
                for v in block:
                    if v == PAD:
                        seen_pad = True
                    else:
                        assert not seen_pad, "real neighbor after padding"

    def test_all_cutoff_neighbors_present_or_dropped(self, water_sys):
        fmt = self._fmt(water_sys)
        pi, pj = neighbor_pairs(water_sys, 4.0)
        n_pairs_directed = 2 * len(pi)
        n_in_list = int(np.count_nonzero(fmt.nlist != PAD))
        assert n_in_list + fmt.n_dropped == n_pairs_directed

    def test_overflow_drops_farthest(self):
        """With sel smaller than the real neighbor count, the kept ones are
        the nearest — the Sec 5.2.1 guarantee."""
        sys = random_binary_system(64, 12.0, seed=5)
        pi, pj = neighbor_pairs(sys, 5.0)
        small = format_neighbors(sys, pi, pj, 5.0, (4, 4))
        big = format_neighbors(sys, pi, pj, 5.0, (40, 40))
        assert small.n_dropped > 0
        for i in range(sys.n_atoms):
            for t in range(2):
                kept = small.nlist[i, small.sel_start[t] : small.sel_start[t] + 4]
                kept = set(kept[kept != PAD].tolist())
                full = big.nlist[i, big.sel_start[t] : big.sel_start[t] + 40]
                full = full[full != PAD]
                d = np.linalg.norm(
                    sys.box.minimum_image(sys.positions[full] - sys.positions[i]),
                    axis=1,
                )
                nearest = set(full[np.argsort(d, kind="stable")][: len(kept)].tolist())
                assert kept == nearest

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_optimized_matches_baseline(self, seed):
        sys = random_binary_system(48, 14.0, seed=seed)
        pi, pj = neighbor_pairs(sys, 5.0)
        opt = format_neighbors(sys, pi, pj, 5.0, (10, 10))
        base = format_neighbors_baseline(sys, pi, pj, 5.0, (10, 10))
        np.testing.assert_array_equal(opt.nlist, base.nlist)
        assert opt.n_dropped == base.n_dropped

    def test_compression_and_record_sort_physically_equivalent(self, water_sys):
        """The codec quantizes distances to 1e-8 Å, so near-degenerate
        neighbors (e.g. the two O-H bonds of a molecule) may swap slots
        relative to the exact-float record sort.  Both layouts must contain
        the same neighbors per type block — and the descriptor is
        permutation invariant, so the physics is identical."""
        pi, pj = neighbor_pairs(water_sys, 4.0)
        a = format_neighbors(water_sys, pi, pj, 4.0, (8, 16), use_compression=True)
        b = format_neighbors(water_sys, pi, pj, 4.0, (8, 16), use_compression=False)
        for i in range(a.nloc):
            for t in range(2):
                s0 = a.sel_start[t]
                blk_a = set(a.nlist[i, s0 : s0 + a.sel[t]].tolist())
                blk_b = set(b.nlist[i, s0 : s0 + b.sel[t]].tolist())
                assert blk_a == blk_b, (i, t)

    def test_compression_and_record_sort_identical_without_ties(self):
        sys = random_binary_system(60, 14.0, seed=12)  # generic positions
        pi, pj = neighbor_pairs(sys, 5.0)
        a = format_neighbors(sys, pi, pj, 5.0, (10, 10), use_compression=True)
        b = format_neighbors(sys, pi, pj, 5.0, (10, 10), use_compression=False)
        np.testing.assert_array_equal(a.nlist, b.nlist)

    def test_nloc_restricts_rows(self, water_sys):
        pi, pj = neighbor_pairs(water_sys, 4.0)
        fmt = format_neighbors(water_sys, pi, pj, 4.0, (8, 16), nloc=10)
        assert fmt.nlist.shape[0] == 10

    def test_wrong_sel_length_raises(self, water_sys):
        pi, pj = neighbor_pairs(water_sys, 4.0)
        with pytest.raises(ValueError, match="sel"):
            format_neighbors(water_sys, pi, pj, 4.0, (8,))

    def test_mask_and_slot_types(self, water_sys):
        fmt = self._fmt(water_sys)
        assert fmt.mask().sum() == np.count_nonzero(fmt.nlist != PAD)
        st_arr = fmt.slot_types()
        assert (st_arr[:8] == 0).all() and (st_arr[8:] == 1).all()
