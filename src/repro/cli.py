"""Command-line interface: ``python -m repro <command>``.

Commands
--------
info        — package/system inventory and model-zoo status
scaling     — regenerate the Summit scaling tables (Tables 1/4, Figs 5/6)
validate    — quick self-check: DP forces vs finite differences,
              distributed-vs-serial agreement, a distributed-ensemble
              bitwise smoke, a 2-client serving round trip, and a static
              plan verification (seconds, not the full suite)
serve       — run the inference service as a socket daemon (the
              repro.serving.net front-end; SIGTERM drains gracefully and
              the exit code asserts request conservation)
serve-bench — closed-loop load generator against the micro-batching
              inference service (N clients, deterministic counters +
              throughput report); ``--socket`` drives it over real TCP
              with mixed MD + interactive + cache-hit traffic
md          — deterministic tiny MD run with optional exact-restart
              checkpointing (``--checkpoint-dir``) and a self-SIGTERM
              switch (``--sigterm-at``) for kill/resume testing
resume      — restore an ``md`` checkpoint and finish the trajectory
              (bitwise identical to the uninterrupted run)
chaos-smoke — seeded fault-injection scenario: worker crash + severed
              connection + duplicated frame against a live daemon, plus a
              SIGTERM-interrupted + resumed MD run — asserts conservation
              and bitwise identity, exit code 0/1 (the CI chaos job)
lint        — concurrency/invariant linter over the source tree
              (repro.analysis.lint; rules L101-L111)
check-plans — compile every zoo model's evaluate/train/serving plans and
              run the static plan verifier (repro.analysis.plancheck;
              rules P101-P110); ``--report FILE`` also writes the
              per-plan metrics JSON, ``--backend`` selects the kernel
              backend (numpy / fused)
plan-report — per-plan compiler metrics across the zoo matrix: record
              count, schedule, span widths, arena bytes before/after
              interference coloring, and fusion counters under
              ``--backend fused`` (JSON to stdout or ``--out FILE``)
"""

from __future__ import annotations

import argparse
import sys


def cmd_info(_args) -> int:
    import numpy

    import repro
    from repro.zoo import DEFAULT_CACHE

    print("repro — reproduction of Jia et al., SC '20 (Gordon Bell)")
    print(f"package: {repro.__file__}")
    print(f"numpy:   {numpy.__version__}")
    print("\nsubsystems:")
    for name, what in [
        ("repro.tfmini", "graph tensor engine (TensorFlow substitute)"),
        ("repro.md", "LAMMPS-like MD substrate + multi-replica ensembles"),
        ("repro.oracles", "ab-initio stand-in potentials"),
        ("repro.dp", "Deep Potential core + batched multi-frame engine"),
        ("repro.serving", "micro-batching inference service (multi-worker pool)"),
        ("repro.parallel", "simulated MPI + domain decomposition"),
        ("repro.perfmodel", "calibrated Summit performance model"),
        ("repro.analysis", "RDF / MSD+diffusion / CNA / structures / stress"),
    ]:
        print(f"  {name:<18} {what}")

    # Importing the model registers the DP custom ops, so the coverage
    # count reflects the full registry the compiled plans execute against.
    import repro.dp.model  # noqa: F401
    import repro.tfmini.passes  # noqa: F401
    from repro.tfmini.ops import out_kernel_coverage

    cov = out_kernel_coverage()
    line = (f"\nout= kernel coverage: {cov['covered']}/{cov['eligible']} "
            f"eligible ops (view/structural ops exempt)")
    if cov["missing"]:
        line += "\n  missing: " + ", ".join(cov["missing"])
    print(line)

    from repro.tfmini.backends import available_backends

    print("plan backends: " + ", ".join(available_backends())
          + "  (REPRO_PLAN_BACKEND or --plan-backend / --backend)")
    print(f"\nmodel zoo cache: {DEFAULT_CACHE}")
    if DEFAULT_CACHE.exists():
        for p in sorted(DEFAULT_CACHE.glob("*.npz")):
            print(f"  cached: {p.name}")
    else:
        print("  (empty — first example run will train the tiny models)")
    return 0


def cmd_scaling(_args) -> int:
    from repro.perfmodel.report import print_all

    print_all()
    return 0


def cmd_validate(_args) -> int:
    import numpy as np

    from repro.analysis.structures import water_box
    from repro.dp.model import DeepPot, DPConfig
    from repro.md import boltzmann_velocities
    from repro.md.neighbor import neighbor_pairs
    from repro.parallel import DistributedEnsembleSimulation, DistributedSimulation

    print("1/6 building a tiny DP model and a 81-atom water cell...")
    model = DeepPot(DPConfig.tiny())
    sys = water_box((3, 3, 3), seed=0)
    pi, pj = neighbor_pairs(sys, model.config.rcut)
    res = model.evaluate(sys, pi, pj)

    print("2/6 checking forces against finite differences...")
    eps, worst = 1e-5, 0.0
    for atom, comp in ((0, 0), (10, 1), (40, 2)):
        p0 = sys.positions[atom, comp]
        sys.positions[atom, comp] = p0 + eps
        a, b = neighbor_pairs(sys, model.config.rcut)
        e_plus = model.evaluate(sys, a, b).energy
        sys.positions[atom, comp] = p0 - eps
        a, b = neighbor_pairs(sys, model.config.rcut)
        e_minus = model.evaluate(sys, a, b).energy
        sys.positions[atom, comp] = p0
        num = -(e_plus - e_minus) / (2 * eps)
        worst = max(worst, abs(num - res.forces[atom, comp]))
    print(f"    max |F_analytic - F_fd| = {worst:.2e} eV/Å")
    ok_fd = worst < 1e-7

    print("3/6 checking distributed == serial...")
    big = water_box((4, 4, 4), seed=1)
    boltzmann_velocities(big, 300.0, seed=2)
    a, b = neighbor_pairs(big, model.config.rcut)
    serial_forces = model.evaluate(big, a, b).forces
    dist = DistributedSimulation(big.copy(), model, grid=(2, 1, 1), dt=5e-4, skin=1.0)
    diff = float(np.abs(dist.forces_now() - serial_forces).max())
    print(f"    max |F_dist - F_serial| = {diff:.2e} eV/Å")
    ok_dist = diff < 1e-10

    print("4/6 checking distributed ensemble == independent runs (bitwise)...")
    R, grid = 2, (2, 1, 1)
    ens = DistributedEnsembleSimulation.from_system(
        big, model, n_replicas=R, temperature=300.0, seed=5,
        grid=grid, dt=5e-4, skin=1.0, rebuild_every=4,
    )
    before = ens.force_backend.evaluations
    n_steps = 4
    ens.run(n_steps)
    evals = ens.force_backend.evaluations - before
    ok_ens = True
    for k in range(R):
        solo_sys = big.copy()
        boltzmann_velocities(solo_sys, 300.0, seed=5 + k)
        solo = DistributedSimulation(
            solo_sys, model, grid=grid, dt=5e-4, skin=1.0, rebuild_every=4,
        )
        solo.run(n_steps)
        ok_ens = ok_ens and np.array_equal(
            ens.replicas[k].current_system().positions,
            solo.current_system().positions,
        ) and np.array_equal(ens.replicas[k].forces_now(), solo.forces_now())
    frames_per_step = R * int(np.prod(grid))
    ok_ens = ok_ens and evals < n_steps * frames_per_step
    print(
        f"    {R}x{grid} replicas: {evals} batched evaluations for "
        f"{n_steps} steps x {frames_per_step} frames "
        f"({'bitwise identical to' if ok_ens else 'MISMATCH vs'} "
        f"independent runs)"
    )

    print("5/6 checking serving == direct (2-client micro-batch smoke)...")
    from repro.serving import (
        InferenceServer,
        perturbed_frames,
        run_closed_loop_clients,
        served_matches_direct,
    )

    frames = perturbed_frames(sys, 4, seed0=40, scale=0.01)
    server = InferenceServer({"tiny": model}, max_batch=4, max_wait_us=2000)
    try:
        served = run_closed_loop_clients(
            server, "tiny", {0: frames[:2], 1: frames[2:]}, timeout=60
        )
        ok_serve = sum(len(r) for r in served.values()) == 4 and all(
            served_matches_direct(model, frame, result)
            for results in served.values()
            for frame, result in results
        )
    except RuntimeError as exc:
        print(f"    serving round trip failed: {exc}")
        ok_serve = False
    finally:
        server.stop()
    snap = server.stats.snapshot()
    print(f"    {snap['requests_completed']} requests in {snap['batches']} "
          f"batches (occupancy {snap['occupancy']:.1f}); served results "
          f"{'bitwise identical to' if ok_serve else 'MISMATCH vs'} "
          f"direct evaluate")

    print("6/6 statically verifying the compiled evaluate plan "
          "(liveness/alias/shape/dtype)...")
    from repro.analysis.plancheck import dp_feed_spec
    from repro.dp.batch import BatchedEvaluator

    engine = BatchedEvaluator(model)
    engine.evaluate_batch([sys], [(pi, pj)])  # warm one arena
    report = engine.plan.verify(spec=dp_feed_spec(model), check_values=True)
    print(f"    {report.summary()}")
    ok_plan = report.ok

    if ok_fd and ok_dist and ok_ens and ok_serve and ok_plan:
        print("\nvalidation PASSED")
        return 0
    print("\nvalidation FAILED")
    return 1


def _bench_tiny_model():
    """The deterministic tiny model every socket-bench process builds.

    Construction is fully seeded, so a daemon started by ``repro serve
    --tiny`` and a bench started by ``repro serve-bench --socket --tiny
    --connect`` hold bitwise-identical weights — the cross-process bitwise
    spot checks need no weight shipping.
    """
    from repro.dp.model import DeepPot, DPConfig

    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


def cmd_serve(args) -> int:
    """Run the inference service as a standalone socket daemon.

    Foreground process: prints the listening address, serves until SIGTERM
    or SIGINT, then drains gracefully — queued requests complete, results
    flush to their connections, and the exit status asserts conservation
    (submitted == completed + failed + cancelled).
    """
    import json
    import signal
    from pathlib import Path

    from repro.serving import InferenceServer, ServingDaemon

    common = dict(
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        max_queue=args.max_queue,
        workers=args.workers,
        max_per_client=args.max_per_client,
        cache_size=args.cache,
        plan_backend=args.plan_backend,
    )
    if args.tiny:
        server = InferenceServer({"water-tiny": _bench_tiny_model()}, **common)
    else:
        names = [m.strip() for m in args.models.split(",") if m.strip()]
        server = InferenceServer.from_zoo(names, **common)
    stats_path = None
    if args.checkpoint_dir:
        # Lifetime counters survive daemon restarts: restore the last
        # cleanly-drained snapshot, persist a fresh one at drain time.
        stats_path = Path(args.checkpoint_dir) / "serving-stats.json"
        if stats_path.exists():
            server.stats.restore(json.loads(stats_path.read_text()))
            print(
                f"repro serve: restored lifetime counters from {stats_path}",
                flush=True,
            )
    daemon = ServingDaemon(
        server, host=args.host, port=args.port,
        idle_timeout=args.idle_timeout,
    ).start()
    host, port = daemon.address
    print(
        f"repro serve: listening on {host}:{port} "
        f"(models: {', '.join(server.model_names())}; "
        f"max_batch={args.max_batch}, cache={args.cache}, "
        f"max_per_client={args.max_per_client})",
        flush=True,
    )

    def handle(signum, _frame):
        print(
            f"repro serve: caught {signal.Signals(signum).name}, draining...",
            flush=True,
        )
        daemon.stop(drain=True)

    signal.signal(signal.SIGTERM, handle)
    signal.signal(signal.SIGINT, handle)
    while not daemon.wait(1.0):
        pass
    s = server.stats.snapshot()
    print(server.stats.report())
    if stats_path is not None:
        stats_path.parent.mkdir(parents=True, exist_ok=True)
        stats_path.write_text(json.dumps(s, indent=2, sort_keys=True))
        print(f"repro serve: lifetime counters saved to {stats_path}",
              flush=True)
    conserved = s["requests_submitted"] == (
        s["requests_completed"]
        + s["requests_failed"]
        + s["requests_cancelled"]
    )
    print(
        f"drain {'clean' if conserved else 'LEAKED REQUESTS'}: "
        f"{s['requests_submitted']} submitted == "
        f"{s['requests_completed']} completed + {s['requests_failed']} failed "
        f"+ {s['requests_cancelled']} cancelled: "
        f"{'OK' if conserved else 'VIOLATED'}",
        flush=True,
    )
    return 0 if conserved else 1


def _serve_bench_socket(args) -> int:
    """serve-bench over real TCP: mixed MD + interactive + cache traffic.

    Either spins a local :class:`~repro.serving.net.ServingDaemon`
    (``--socket``) or attaches to a running ``repro serve`` daemon
    (``--connect host:port`` — the CI smoke path).  The traffic mix:

    * ``--clients`` interactive closed-loop SocketClients (one connection
      each, single request in flight — cross-client coalescing only);
    * one MD client: a ``Simulation`` stepping through
      ``BackendPotential(ServingForceBackend(SocketClient))``, verified
      bitwise against a local in-process trajectory;
    * one cache client re-submitting an identical frame (a deterministic
      cache hit whenever the daemon's cache is on).

    Deterministic asserts (never wall clock): completed counts, bitwise
    spot checks, batches < requests, >= 1 cache hit, and conservation over
    the bench's own traffic window.
    """
    import time

    import numpy as np

    from repro.analysis.structures import water_box
    from repro.dp.backend import BackendPotential, ServingForceBackend
    from repro.dp.pair import DeepPotPair
    from repro.md.neighbor import fitted_neighbor_list
    from repro.md.simulation import Simulation
    from repro.serving import (
        InferenceServer,
        ServingDaemon,
        SocketClient,
        perturbed_frames,
        run_closed_loop_clients,
        served_matches_direct,
    )

    if not args.tiny:
        print("serve-bench --socket requires --tiny: the daemon and the "
              "bench must construct the same deterministic model for the "
              "bitwise checks")
        return 2
    name = "water-tiny"
    model = _bench_tiny_model()  # local twin of the daemon's model
    base = water_box((2, 2, 2), seed=0)

    daemon = None
    if args.connect:
        address = args.connect
        print(f"attaching to daemon at {address}")
    else:
        server = InferenceServer(
            {name: _bench_tiny_model()},
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            max_queue=args.max_queue,
            workers=args.workers,
            cache_size=args.cache,
            plan_backend=args.plan_backend,
        )
        daemon = ServingDaemon(server).start()
        address = daemon.address
        print(f"local daemon on {address[0]}:{address[1]}")

    # connect_retry rides out the daemon-still-binding race (the CI smoke
    # starts the daemon and the bench back to back): first-connect
    # ECONNREFUSED is retried with capped exponential backoff inside the
    # window instead of failing the whole bench.
    probe = SocketClient(
        address, name, client="bench-probe",
        connect_retry=args.connect_retry,
    )
    try:
        cache_on = probe.limits.get("cache_size", 0) > 0
        start = probe.stats()  # the daemon may be long-running: delta counters

        n_clients, n_requests = args.clients, args.requests
        frames = {
            tid: perturbed_frames(base, n_requests, seed0=1000 * (tid + 1))
            for tid in range(n_clients)
        }
        t0 = time.perf_counter()

        # interactive closed-loop clients, one TCP connection each
        served = run_closed_loop_clients(
            None, None, frames, timeout=300,
            join_timeout=270.0 if args.tiny else None,
            client_factory=lambda tid: SocketClient(
                address, name, client=f"bench-{tid}",
                connect_retry=args.connect_retry,
            ),
        )

        # MD client: a Simulation whose forces come from the daemon
        md_steps = args.md_steps
        md_sys = base.copy()
        with SocketClient(address, name, client="bench-md") as md_client:
            sim = Simulation(
                md_sys,
                BackendPotential(
                    ServingForceBackend(md_client), cutoff=md_client.cutoff
                ),
                dt=0.0005,
                neighbor=fitted_neighbor_list(md_sys, md_client.cutoff),
            )
            sim.run(md_steps)
        ref_sys = base.copy()
        ref = Simulation(
            ref_sys, DeepPotPair(model), dt=0.0005,
            neighbor=fitted_neighbor_list(ref_sys, model.config.rcut),
        )
        ref.run(md_steps)
        md_ok = np.array_equal(md_sys.positions, ref_sys.positions)

        # cache client: identical frame twice — a deterministic hit
        hit_frame = perturbed_frames(base, 1, seed0=77)[0]
        probe.evaluate(hit_frame, timeout=300)
        probe.evaluate(hit_frame, timeout=300)

        wall = time.perf_counter() - t0
        end = probe.stats()
    finally:
        probe.close()

    d = {k: end[k] - start[k] for k in (
        "requests_submitted", "requests_completed", "requests_failed",
        "requests_cancelled", "batches", "frames", "cache_hits",
        "cache_misses",
    )}
    total = d["requests_completed"]
    print(f"\n{total} requests in {wall:.2f} s over TCP "
          f"({total / wall:.1f} frames/s) — "
          f"{d['batches']} batches, {d['frames']} batched frames, "
          f"{d['cache_hits']} cache hits / {d['cache_misses']} misses")

    checks = {
        "all interactive requests served": (
            sum(len(r) for r in served.values()) == n_clients * n_requests
        ),
        "interactive results bitwise vs direct": all(
            served_matches_direct(model, *served[tid][-1])
            for tid in range(n_clients)
        ),
        f"MD trajectory over socket bitwise vs in-process ({md_steps} steps)":
            md_ok,
        "conservation over the bench window": (
            d["requests_submitted"]
            == d["requests_completed"] + d["requests_failed"]
            + d["requests_cancelled"]
        ),
    }
    if cache_on:
        checks[">= 1 deterministic cache hit"] = d["cache_hits"] >= 1
        # every batch carries >= 1 frame and the hit produced none, so the
        # coalescing inequality is deterministic, not timing-dependent
        checks["batches < requests (coalescing)"] = d["batches"] < total
    else:
        print("note: daemon cache is off — cache-hit checks skipped "
              "(start it with --cache N)")
    for what, ok in checks.items():
        print(f"  {'PASS' if ok else 'FAIL'}  {what}")

    if daemon is not None:
        daemon.stop(drain=True)
        print(daemon.server.stats.report())
    return 0 if all(checks.values()) else 1


def cmd_serve_bench(args) -> int:
    """Closed-loop load generation against the micro-batching service.

    N client threads each submit ``--requests`` frames synchronously
    (submit, wait for the result, submit the next — the hardest pattern to
    batch, since each client has at most one request in flight).  Coalescing
    across clients is what the scheduler's ``max_wait_us`` window buys.

    ``--socket`` / ``--connect`` switch to the TCP front-end with a mixed
    MD + interactive + cache workload (see :func:`_serve_bench_socket`).
    """
    import time

    if args.socket or args.connect:
        return _serve_bench_socket(args)

    from repro.analysis.structures import fcc_lattice, water_box
    from repro.serving import (
        InferenceServer,
        perturbed_frames,
        run_closed_loop_clients,
        served_matches_direct,
    )

    workers = args.workers  # 'per-model' or an int (server coerces/validates)
    if args.tiny:
        from repro.dp.model import DeepPot, DPConfig

        name = "water-tiny"
        model = DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))
        base = water_box((2, 2, 2), seed=0)
        server = InferenceServer(
            {name: model},
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            max_queue=args.max_queue,
            workers=workers,
            plan_backend=args.plan_backend,
        )
    else:
        name = args.model
        server = InferenceServer.from_zoo(
            [name],
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            max_queue=args.max_queue,
            workers=workers,
            plan_backend=args.plan_backend,
        )
        model = server.model(name)
        base = (
            fcc_lattice((3, 3, 3))
            if name.startswith("copper")
            else water_box((3, 3, 3), seed=0)
        )

    n_clients, n_requests = args.clients, args.requests
    print(f"serving model {name!r}: {base.n_atoms}-atom frames, "
          f"{n_clients} closed-loop clients x {n_requests} requests, "
          f"max_batch={args.max_batch}, max_wait={args.max_wait_us:.0f} us, "
          f"workers={server.workers} ({', '.join(server.worker_ids())})")

    # Per-client frame sets (perturbed copies; decorrelated workloads).
    frames = {
        tid: perturbed_frames(base, n_requests, seed0=1000 * (tid + 1))
        for tid in range(n_clients)
    }

    t0 = time.perf_counter()
    # --tiny (the CI smoke path, 10-minute job timeout) keeps the join
    # deadline tight so a wedged server fails WITH per-client progress
    # instead of a hard job kill; real workloads scale with the helper's
    # default (timeout * frames-per-client + slack).
    served = run_closed_loop_clients(
        server, name, frames, timeout=300,
        join_timeout=270.0 if args.tiny else None,
    )
    wall = time.perf_counter() - t0
    server.stop()

    total = n_clients * n_requests
    print(f"\n{total} requests in {wall:.2f} s "
          f"({total / wall:.1f} frames/s, "
          f"{wall / total * 1e3:.2f} ms/request mean round trip)")
    print(server.stats.report())

    # Correctness spot check: one request per client, bitwise vs direct.
    ok = all(
        served_matches_direct(model, *served[tid][-1])
        for tid in range(n_clients)
    )
    print(f"bitwise vs direct evaluate ({n_clients} spot checks): "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _md_tiny_sim(thermostat: str):
    """The deterministic tiny MD setup ``repro md`` and ``repro resume``
    both construct — identical arguments on both sides are the restore
    contract (the code is the checkpoint's schema)."""
    from repro.analysis.structures import water_box
    from repro.dp.pair import DeepPotPair
    from repro.md import boltzmann_velocities
    from repro.md.integrators import Langevin, NoseHoover, VelocityVerlet
    from repro.md.neighbor import fitted_neighbor_list
    from repro.md.simulation import Simulation

    model = _bench_tiny_model()
    base = water_box((2, 2, 2), seed=0)
    boltzmann_velocities(base, 300.0, seed=1)
    integrator = {
        "nve": VelocityVerlet,
        "langevin": lambda: Langevin(temperature=300.0, seed=7),
        "nosehoover": lambda: NoseHoover(temperature=300.0),
    }[thermostat]()
    return Simulation(
        base,
        DeepPotPair(model),
        dt=5e-4,
        integrator=integrator,
        neighbor=fitted_neighbor_list(base, model.config.rcut),
        thermo_every=10,
    )


def _write_md_npz(path: str, sim) -> None:
    import numpy as np

    np.savez(
        path,
        positions=sim.system.positions,
        velocities=sim.system.velocities,
        forces=sim.last_result().forces,
        thermo=np.array(
            [r.as_tuple() for r in sim.thermo.rows], dtype=np.float64
        ).reshape(-1, 7),
        step_count=np.int64(sim.step_count),
    )


def cmd_md(args) -> int:
    """Deterministic tiny MD run with exact-restart checkpointing.

    ``--checkpoint-dir`` saves every ``--checkpoint-every`` steps and arms
    SIGTERM -> checkpoint-then-exit(3); ``--sigterm-at N`` raises SIGTERM
    *on itself* at step N (the deterministic stand-in for an external
    ``kill``, and exactly what the CI chaos job's shell flow exercises
    from outside).  ``repro resume`` finishes the trajectory bitwise.
    """
    import signal

    from repro.md.checkpoint import CheckpointInterrupt, CheckpointWriter

    if args.sigterm_at and not args.checkpoint_dir:
        print("--sigterm-at needs --checkpoint-dir (nothing to resume from)")
        return 2
    sim = _md_tiny_sim(args.thermostat)
    writer = None
    if args.checkpoint_dir:
        writer = CheckpointWriter(
            sim, args.checkpoint_dir, every=args.checkpoint_every
        ).install_sigterm()

    def cb(s):
        if args.sigterm_at and s.step_count == args.sigterm_at:
            signal.raise_signal(signal.SIGTERM)
        if writer is not None:
            writer(s)

    try:
        sim.run(args.steps, callback=cb)
    except CheckpointInterrupt as exc:
        print(f"repro md: interrupted — {exc}", flush=True)
        return 3
    finally:
        if writer is not None:
            writer.uninstall_sigterm()
    if args.out:
        _write_md_npz(args.out, sim)
    print(
        f"repro md: {sim.step_count} steps, "
        f"{sim.force_evaluations} force evaluations, "
        f"{len(sim.thermo.rows)} thermo rows"
        + (f", saved {args.out}" if args.out else "")
        + (f", {writer.saves} checkpoint(s)" if writer is not None else ""),
        flush=True,
    )
    return 0


def cmd_resume(args) -> int:
    """Restore an ``md`` checkpoint and run to ``--steps`` total steps."""
    from repro.md.checkpoint import restore_checkpoint

    sim = _md_tiny_sim(args.thermostat)
    restore_checkpoint(sim, args.checkpoint)
    remaining = args.steps - sim.step_count
    if remaining < 0:
        print(
            f"checkpoint is already at step {sim.step_count} > "
            f"--steps {args.steps}"
        )
        return 2
    print(
        f"repro resume: restored step {sim.step_count} from "
        f"{args.checkpoint}, running {remaining} more",
        flush=True,
    )
    sim.run(remaining)
    if args.out:
        _write_md_npz(args.out, sim)
    print(
        f"repro resume: {sim.step_count} steps total, "
        f"{sim.force_evaluations} force evaluations, "
        f"{len(sim.thermo.rows)} thermo rows"
        + (f", saved {args.out}" if args.out else ""),
        flush=True,
    )
    return 0


def cmd_chaos_smoke(args) -> int:
    """Seeded fault-injection end-to-end: the CI chaos job.

    Scenario A (serving): a daemon hosting the tiny model runs under a
    :class:`~repro.serving.faults.FaultPlan` that crashes the worker on
    its first batch, severs the client's connection after 3 frames, and
    duplicates a result frame — while a retrying
    :class:`~repro.dp.backend.ServingForceBackend` evaluates 8 frames.
    Asserts: every result bitwise equal to direct evaluation, daemon
    stayed up, conservation holds, crash/respawn/reconnect counters fired.

    Scenario B (checkpointing): a Langevin MD run is SIGTERM-killed
    mid-run (real signal, delivered to this process), then restored and
    finished; positions/velocities/forces/thermo must be bitwise equal to
    the uninterrupted run.
    """
    import signal
    import tempfile

    import numpy as np

    from repro.analysis.structures import water_box
    from repro.dp.backend import ForceFrame, ServingForceBackend
    from repro.md.checkpoint import (
        CheckpointInterrupt,
        CheckpointWriter,
        restore_checkpoint,
    )
    from repro.md.neighbor import neighbor_pairs
    from repro.serving import (
        CrashWorker,
        FaultPlan,
        InferenceServer,
        ServingDaemon,
        SeverConnection,
        SocketClient,
        TamperFrame,
    )

    checks: dict[str, bool] = {}

    print("chaos-smoke A: serving under a seeded FaultPlan...")
    name = "water-tiny"
    model = _bench_tiny_model()
    base = water_box((2, 2, 2), seed=0)
    from repro.serving import perturbed_frames

    frames = perturbed_frames(base, 8, seed0=4242)
    direct = [
        model.evaluate(f, *neighbor_pairs(f, model.config.rcut))
        for f in frames
    ]
    plan = FaultPlan(
        faults=(
            CrashWorker(worker=name, at_batch=1),
            SeverConnection(client="chaos", after_frames=3),
            TamperFrame(client="chaos", at_frame=5, action="duplicate"),
        ),
        seed=args.seed,
    )
    server = InferenceServer(
        {name: model}, max_batch=4, max_wait_us=2000, faults=plan
    )
    daemon = ServingDaemon(server, faults=plan).start()
    try:
        with SocketClient(
            daemon.address, name, client="chaos", retries=4
        ) as client:
            backend = ServingForceBackend(client, timeout=120, retries=4)
            results = backend.evaluate(
                [
                    ForceFrame(f, *neighbor_pairs(f, model.config.rcut))
                    for f in frames
                ]
            )
            checks["all frames served under faults"] = len(results) == 8
            checks["served bitwise == direct (through crash + sever)"] = all(
                r.energy == d.energy
                and np.array_equal(r.forces, d.forces)
                and np.array_equal(r.virial, d.virial)
                for r, d in zip(results, direct)
            )
            checks["client reconnected after sever"] = client.reconnects >= 1
            checks["client resubmitted in-flight frames"] = (
                client.resubmits >= 1
            )
    finally:
        daemon.stop(drain=True)
    s = server.stats.snapshot()
    checks["worker crashed and was respawned"] = (
        s["worker_crashes"] >= 1 and s["worker_respawns"] >= 1
    )
    checks["conservation through the crash"] = s["requests_submitted"] == (
        s["requests_completed"]
        + s["requests_failed"]
        + s["requests_cancelled"]
    )
    checks["each planned fault fired"] = (
        plan.fired("CrashWorker") == 1
        and plan.fired("SeverConnection") == 1
        and plan.fired("TamperFrame") == 1
    )
    print(server.stats.report())

    print("\nchaos-smoke B: SIGTERM mid-MD, restore, bitwise finish...")
    total, kill_at = 40, 17
    ref = _md_tiny_sim("langevin")
    ref.run(total)
    with tempfile.TemporaryDirectory() as tmp:
        victim = _md_tiny_sim("langevin")
        writer = CheckpointWriter(victim, tmp, every=10).install_sigterm()

        def cb(s):
            if s.step_count == kill_at:
                signal.raise_signal(signal.SIGTERM)
            writer(s)

        interrupted = False
        try:
            victim.run(total, callback=cb)
        except CheckpointInterrupt:
            interrupted = True
        finally:
            writer.uninstall_sigterm()
        checks["SIGTERM interrupted the run mid-way"] = (
            interrupted and victim.step_count == kill_at
        )
        resumed = _md_tiny_sim("langevin")
        restore_checkpoint(resumed, writer.path)
        resumed.run(total - resumed.step_count)
    checks["resumed positions bitwise == uninterrupted"] = np.array_equal(
        resumed.system.positions, ref.system.positions
    )
    checks["resumed velocities bitwise == uninterrupted"] = np.array_equal(
        resumed.system.velocities, ref.system.velocities
    )
    checks["resumed forces bitwise == uninterrupted"] = np.array_equal(
        resumed.last_result().forces, ref.last_result().forces
    )
    checks["resumed thermo rows bitwise == uninterrupted"] = [
        r.as_tuple() for r in resumed.thermo.rows
    ] == [r.as_tuple() for r in ref.thermo.rows]
    checks["resumed evaluation count matches"] = (
        resumed.force_evaluations == ref.force_evaluations
    )

    print()
    for what, ok in checks.items():
        print(f"  {'PASS' if ok else 'FAIL'}  {what}")
    print(f"chaos-smoke: {'PASSED' if all(checks.values()) else 'FAILED'}")
    return 0 if all(checks.values()) else 1


def cmd_lint(args) -> int:
    from pathlib import Path

    import repro
    from repro.analysis.lint import RULES, format_json, format_text, lint_paths

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}  {desc}")
        return 0
    paths = args.paths or [str(Path(repro.__file__).parent)]
    findings = lint_paths(paths)
    print(format_json(findings) if args.json else format_text(findings))
    if findings and args.strict:
        return 1
    return 0


def _plan_report_entries(results) -> list:
    """JSON-ready per-plan entries (verification verdict + metrics)."""
    out = []
    for e in results:
        entry = {
            "plan": e["plan"],
            "records": e["records"],
            "ok": e["report"].ok,
            "findings": [str(f) for f in e["report"].findings],
        }
        if "metrics" in e:
            entry.update(e["metrics"])
        out.append(entry)
    return out


def cmd_check_plans(args) -> int:
    import json as _json

    from repro.analysis.plancheck import check_all_plans

    results = check_all_plans(report=bool(args.report),
                              plan_backend=args.backend)
    bad = [e for e in results if not e["report"].ok]
    if args.report:
        with open(args.report, "w") as fh:
            _json.dump(_plan_report_entries(results), fh, indent=2)
            fh.write("\n")
        print(f"plan report written to {args.report}")
    if args.json:
        print(_json.dumps(
            [
                {
                    "plan": e["plan"],
                    "records": e["records"],
                    "ok": e["report"].ok,
                    "findings": [str(f) for f in e["report"].findings],
                    "notes": list(e["report"].notes),
                }
                for e in results
            ],
            indent=2,
        ))
    else:
        for e in results:
            rep = e["report"]
            status = "OK" if rep.ok else f"FAIL ({len(rep.findings)} finding(s))"
            print(f"{e['plan']:<26} {e['records']:>4} records  {status}")
            for f in rep.findings:
                print(f"    {f}")
            for n in rep.notes:
                print(f"    note: {n}")
        verdict = "clean" if not bad else f"{len(bad)} plan(s) with findings"
        print(f"check-plans: {len(results)} plans verified — {verdict}")
    return 1 if bad else 0


def cmd_plan_report(args) -> int:
    import json as _json

    from repro.analysis.plancheck import check_all_plans

    results = check_all_plans(report=True, plan_backend=args.backend)
    entries = _plan_report_entries(results)
    payload = _json.dumps(entries, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"plan report written to {args.out}")
    else:
        print(payload)
    if not args.out:
        return 1 if any(not e["ok"] for e in entries) else 0
    for e in entries:
        saved = e["arena_bytes_saved"]
        pct = 100.0 * saved / e["arena_nbytes_fifo"] if e["arena_nbytes_fifo"] else 0.0
        line = (
            f"  {e['plan']:<26} {e['records']:>4} records  "
            f"schedule={e['schedule']:<8} spans={e['spans']:>4} "
            f"maxw={e['max_span_width']:>2}  "
            f"arena {e['arena_nbytes_colored']:>10} B "
            f"(fifo {e['arena_nbytes_fifo']:>10} B, -{pct:.1f}%)"
        )
        if e.get("records_fused"):
            line += (
                f"  fused {e['records_fused']:>3} records/"
                f"{e['fused_chains']} chains "
                f"(-{e['fused_passes_saved']} passes, "
                f"arena -{e['arena_fusion_saved']} B)"
            )
        print(line)
    return 1 if any(not e["ok"] for e in entries) else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="package inventory and zoo status")
    sub.add_parser("scaling", help="regenerate the Summit scaling tables")
    sub.add_parser("validate", help="quick end-to-end self check")
    daemon = sub.add_parser(
        "serve",
        help="run the inference service as a socket daemon "
             "(SIGTERM = graceful drain)",
    )
    daemon.add_argument("--models", default="water",
                        help="comma-separated zoo models: "
                             "water/copper[-double|-single]")
    daemon.add_argument("--tiny", action="store_true",
                        help="host one untrained deterministic tiny model "
                             "(fast; what serve-bench --connect expects)")
    daemon.add_argument("--host", default="127.0.0.1")
    daemon.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed at startup)")
    daemon.add_argument("--max-batch", type=int, default=8)
    daemon.add_argument("--max-wait-us", type=float, default=1000.0)
    daemon.add_argument("--max-queue", type=int, default=64)
    daemon.add_argument("--workers", default="per-model")
    daemon.add_argument("--max-per-client", type=int, default=0,
                        help="per-client admission quota (0 = unlimited)")
    daemon.add_argument("--cache", type=int, default=0,
                        help="result-cache entries (0 = off)")
    daemon.add_argument("--checkpoint-dir", default=None,
                        help="persist lifetime counters across restarts "
                             "(serving-stats.json in this directory)")
    daemon.add_argument("--idle-timeout", type=float, default=0.0,
                        help="sweep client connections idle longer than "
                             "this many seconds (0 = never)")
    daemon.add_argument("--plan-backend", default=None,
                        help="kernel backend for every engine's compiled "
                             "plan (numpy/fused; default: "
                             "REPRO_PLAN_BACKEND, then numpy)")
    serve = sub.add_parser(
        "serve-bench",
        help="closed-loop load generator for the inference service",
    )
    serve.add_argument("--model", default="water",
                       help="zoo model: water/copper[-double|-single]")
    serve.add_argument("--tiny", action="store_true",
                       help="use an untrained tiny model (fast; no zoo cache)")
    serve.add_argument("--clients", type=int, default=4)
    serve.add_argument("--requests", type=int, default=8,
                       help="requests per client")
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--max-wait-us", type=float, default=1000.0)
    serve.add_argument("--max-queue", type=int, default=64)
    serve.add_argument("--workers", default="per-model",
                       help="'per-model' (one worker per hosted model) or "
                            "an integer shared-pool size")
    serve.add_argument("--socket", action="store_true",
                       help="drive the bench over a real TCP daemon "
                            "(in-process unless --connect)")
    serve.add_argument("--connect", metavar="HOST:PORT", default=None,
                       help="attach to a running `repro serve` daemon "
                            "instead of spinning one locally")
    serve.add_argument("--cache", type=int, default=16,
                       help="result-cache entries for the local --socket "
                            "daemon (ignored with --connect)")
    serve.add_argument("--md-steps", type=int, default=3,
                       help="steps for the socket bench's MD client")
    serve.add_argument("--connect-retry", type=float, default=10.0,
                       help="seconds to retry the initial connect while the "
                            "daemon is still binding (0 = one attempt)")
    serve.add_argument("--plan-backend", default=None,
                       help="kernel backend for the local server's engines "
                            "(numpy/fused; ignored with --connect)")
    md = sub.add_parser(
        "md",
        help="deterministic tiny MD run with exact-restart checkpointing",
    )
    md.add_argument("--steps", type=int, default=40)
    md.add_argument("--out", default=None,
                    help="write final positions/velocities/forces/thermo "
                         "as .npz")
    md.add_argument("--checkpoint-dir", default=None,
                    help="save checkpoints here and arm SIGTERM -> "
                         "checkpoint-then-exit(3)")
    md.add_argument("--checkpoint-every", type=int, default=0,
                    help="also checkpoint every N steps (0 = only on "
                         "SIGTERM)")
    md.add_argument("--sigterm-at", type=int, default=0,
                    help="raise SIGTERM on ourselves at step N "
                         "(deterministic kill, for the chaos CI job)")
    md.add_argument("--thermostat", default="langevin",
                    choices=("nve", "langevin", "nosehoover"))
    res = sub.add_parser(
        "resume",
        help="restore an `md` checkpoint and finish the run bitwise",
    )
    res.add_argument("--checkpoint", required=True,
                     help="checkpoint file written by `repro md`")
    res.add_argument("--steps", type=int, default=40,
                     help="TOTAL steps (matching the original --steps)")
    res.add_argument("--out", default=None,
                     help="write final state as .npz")
    res.add_argument("--thermostat", default="langevin",
                     choices=("nve", "langevin", "nosehoover"),
                     help="must match the original run")
    chaos = sub.add_parser(
        "chaos-smoke",
        help="seeded fault-injection end-to-end: crash/sever/tamper "
             "serving + SIGTERM/resume bitwise MD",
    )
    chaos.add_argument("--seed", type=int, default=0)
    lint = sub.add_parser(
        "lint", help="concurrency/invariant linter (rules L101-L111)"
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--json", action="store_true", help="JSON report")
    lint.add_argument("--strict", action="store_true",
                      help="exit nonzero when any finding remains")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")
    checkp = sub.add_parser(
        "check-plans",
        help="statically verify every zoo model's compiled plans "
             "(rules P101-P110)",
    )
    checkp.add_argument("--json", action="store_true", help="JSON report")
    checkp.add_argument(
        "--report", metavar="FILE", default=None,
        help="also write per-plan compiler metrics (records, schedule, "
             "span widths, colored-vs-FIFO arena bytes, fusion counters) "
             "as JSON to FILE",
    )
    checkp.add_argument(
        "--backend", default=None,
        help="kernel backend for every compiled plan (numpy/fused; "
             "default: REPRO_PLAN_BACKEND, then numpy)",
    )
    planrep = sub.add_parser(
        "plan-report",
        help="per-plan compiler metrics across the zoo matrix "
             "(schedule, span widths, arena bytes before/after coloring, "
             "fusion counters)",
    )
    planrep.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the JSON report to FILE (and print a summary table) "
             "instead of dumping JSON to stdout",
    )
    planrep.add_argument(
        "--backend", default=None,
        help="kernel backend for every compiled plan (numpy/fused; "
             "default: REPRO_PLAN_BACKEND, then numpy)",
    )
    args = parser.parse_args(argv)
    return {
        "info": cmd_info,
        "scaling": cmd_scaling,
        "validate": cmd_validate,
        "serve": cmd_serve,
        "serve-bench": cmd_serve_bench,
        "md": cmd_md,
        "resume": cmd_resume,
        "chaos-smoke": cmd_chaos_smoke,
        "lint": cmd_lint,
        "check-plans": cmd_check_plans,
        "plan-report": cmd_plan_report,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
