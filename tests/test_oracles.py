"""Tests for the ab-initio oracle potentials: analytic forces vs finite
differences, symmetry, virial consistency, and physical sanity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.structures import fcc_lattice, water_box
from repro.md.box import Box
from repro.md.system import System
from repro.md.thermo import compute_pressure
from repro.oracles import FlexibleWater, SuttonChenEAM
from repro.oracles.eam import switch_fn


def fd_force(potential, system, atom, comp, eps=1e-6):
    p0 = system.positions[atom, comp]
    system.positions[atom, comp] = p0 + eps
    ep = potential.compute_dense(system).energy
    system.positions[atom, comp] = p0 - eps
    em = potential.compute_dense(system).energy
    system.positions[atom, comp] = p0
    return -(ep - em) / (2 * eps)


def fd_virial_trace(potential, system, eps=1e-6):
    """tr W = -3V dE/dV via isotropic scaling — checks virial consistency."""

    def energy_at(scale):
        scaled = system.copy()
        scaled.positions = scaled.positions * scale
        scaled.box = scaled.box.scaled([scale] * 3)
        return potential.compute_dense(scaled).energy

    ep = energy_at(1.0 + eps)
    em = energy_at(1.0 - eps)
    de_dlam = (ep - em) / (2 * eps)
    # E(lam) with r -> lam r: dE/dlam at lam=1 equals sum_ij r_ij dE/dr_ij = -tr W
    return -de_dlam


@pytest.fixture
def perturbed_cu():
    sys = fcc_lattice((5, 5, 5))
    rng = np.random.default_rng(3)
    sys.positions += rng.normal(scale=0.08, size=sys.positions.shape)
    return sys


@pytest.fixture
def small_water():
    return water_box((4, 4, 4), seed=2)


class TestSwitchFunction:
    def test_plateau_and_zero(self):
        s, ds = switch_fn(np.array([1.0, 5.0, 8.0]), 6.0, 7.5)
        assert s[0] == 1.0 and ds[0] == 0.0
        assert s[2] == 0.0 and ds[2] == 0.0

    def test_continuity_at_edges(self):
        eps = 1e-9
        s_lo, _ = switch_fn(np.array([6.0 - eps, 6.0 + eps]), 6.0, 7.5)
        np.testing.assert_allclose(s_lo, 1.0, atol=1e-6)
        s_hi, _ = switch_fn(np.array([7.5 - eps, 7.5 + eps]), 6.0, 7.5)
        np.testing.assert_allclose(s_hi, 0.0, atol=1e-6)

    @given(r=st.floats(6.01, 7.49))
    @settings(max_examples=30, deadline=None)
    def test_property_derivative_matches_fd(self, r):
        eps = 1e-7
        s_p, _ = switch_fn(np.array([r + eps]), 6.0, 7.5)
        s_m, _ = switch_fn(np.array([r - eps]), 6.0, 7.5)
        _, ds = switch_fn(np.array([r]), 6.0, 7.5)
        assert ds[0] == pytest.approx((s_p[0] - s_m[0]) / (2 * eps), abs=1e-6)

    @given(r=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_property_monotone_and_bounded(self, r):
        s, _ = switch_fn(np.array([r]), 6.0, 7.5)
        assert 0.0 <= s[0] <= 1.0


class TestEAM:
    def test_forces_match_fd(self, perturbed_cu):
        pot = SuttonChenEAM()
        res = pot.compute_dense(perturbed_cu)
        for atom, comp in [(0, 0), (13, 1), (77, 2), (200, 0)]:
            num = fd_force(pot, perturbed_cu, atom, comp)
            assert res.forces[atom, comp] == pytest.approx(num, abs=5e-6)

    def test_forces_sum_to_zero(self, perturbed_cu):
        res = SuttonChenEAM().compute_dense(perturbed_cu)
        np.testing.assert_allclose(res.forces.sum(axis=0), 0.0, atol=1e-10)

    def test_perfect_lattice_forces_vanish(self):
        sys = fcc_lattice((5, 5, 5))
        res = SuttonChenEAM().compute_dense(sys)
        assert np.abs(res.forces).max() < 1e-9

    def test_virial_matches_volume_derivative(self, perturbed_cu):
        pot = SuttonChenEAM()
        res = pot.compute_dense(perturbed_cu)
        num = fd_virial_trace(pot, perturbed_cu)
        assert np.trace(res.virial) == pytest.approx(num, rel=1e-4)

    def test_translation_invariance(self, perturbed_cu):
        pot = SuttonChenEAM()
        e0 = pot.compute_dense(perturbed_cu).energy
        shifted = perturbed_cu.copy()
        shifted.positions = shifted.box.wrap(shifted.positions + np.array([1.3, -2.1, 0.7]))
        assert pot.compute_dense(shifted).energy == pytest.approx(e0, rel=1e-12)

    def test_atom_energies_sum_to_total(self, perturbed_cu):
        res = SuttonChenEAM().compute_dense(perturbed_cu)
        assert res.atom_energies.sum() == pytest.approx(res.energy, rel=1e-12)

    def test_vacancy_raises_energy(self):
        """Removing an atom costs energy (positive vacancy formation)."""
        pot = SuttonChenEAM()
        perfect = fcc_lattice((5, 5, 5))
        e_perfect = pot.compute_dense(perfect).energy
        n = perfect.n_atoms
        defect = System(
            box=perfect.box.copy(),
            positions=perfect.positions[1:].copy(),
            types=perfect.types[1:].copy(),
            masses=perfect.masses.copy(),
        )
        e_defect = pot.compute_dense(defect).energy
        e_vac = e_defect - e_perfect * (n - 1) / n
        assert e_vac > 0.2  # eV; real Cu ~1.3 eV

    def test_isolated_dimer_binds(self):
        sys = System(
            box=Box([40.0] * 3),
            positions=np.array([[10.0, 10, 10], [12.4, 10, 10]]),
            types=np.zeros(2, dtype=np.int64),
            masses=np.array([63.546]),
        )
        res = SuttonChenEAM().compute_dense(sys)
        assert res.energy < 0.0


class TestWaterOracle:
    def test_forces_match_fd(self, small_water):
        pot = FlexibleWater()
        res = pot.compute_dense(small_water)
        for atom, comp in [(0, 0), (1, 1), (2, 2), (30, 0), (100, 2)]:
            num = fd_force(pot, small_water, atom, comp)
            assert res.forces[atom, comp] == pytest.approx(num, abs=1e-6)

    def test_forces_sum_to_zero(self, small_water):
        res = FlexibleWater().compute_dense(small_water)
        np.testing.assert_allclose(res.forces.sum(axis=0), 0.0, atol=1e-10)

    def test_virial_matches_volume_derivative(self, small_water):
        # Volume scaling stretches bonds too; the bonded virial must be right.
        pot = FlexibleWater()
        res = pot.compute_dense(small_water)
        num = fd_virial_trace(pot, small_water)
        assert np.trace(res.virial) == pytest.approx(num, rel=1e-4, abs=1e-4)

    def test_translation_invariance(self, small_water):
        pot = FlexibleWater()
        e0 = pot.compute_dense(small_water).energy
        shifted = small_water.copy()
        shifted.positions = shifted.box.wrap(shifted.positions + 2.345)
        assert pot.compute_dense(shifted).energy == pytest.approx(e0, rel=1e-10)

    def test_monomer_geometry_is_minimum(self):
        """A single molecule at (r0, theta0) has ~zero forces."""
        pot = FlexibleWater()
        sys = water_box((1, 1, 1), jitter=0.0, seed=0)
        big = System(
            box=Box([30.0] * 3),
            positions=sys.positions + 10.0,
            types=sys.types,
            masses=sys.masses,
            type_names=["O", "H"],
            mol_ids=sys.mol_ids,
        )
        res = pot.compute_dense(big)
        assert np.abs(res.forces).max() < 1e-8

    def test_bond_stretch_restoring_force(self):
        pot = FlexibleWater()
        sys = water_box((1, 1, 1), jitter=0.0, seed=0)
        sys = System(
            box=Box([30.0] * 3),
            positions=sys.positions + 10.0,
            types=sys.types,
            masses=sys.masses,
            mol_ids=sys.mol_ids,
        )
        # stretch H1 along the O-H1 bond
        d = sys.positions[1] - sys.positions[0]
        d /= np.linalg.norm(d)
        sys.positions[1] += 0.1 * d
        res = pot.compute_dense(sys)
        # force on H1 points back toward O
        assert np.dot(res.forces[1], d) < 0

    def test_wrong_ordering_raises(self, small_water):
        bad = small_water.copy()
        bad.types = bad.types[::-1].copy()
        with pytest.raises(ValueError, match="O,H,H"):
            FlexibleWater().compute_dense(bad)

    def test_missing_mol_ids_raises(self, small_water):
        bad = small_water.copy()
        bad.mol_ids = None
        with pytest.raises(ValueError, match="mol_ids"):
            FlexibleWater().compute_dense(bad)

    def test_liquid_density_pressure_sane(self, small_water):
        res = FlexibleWater().compute_dense(small_water)
        p = compute_pressure(small_water, res.virial)
        assert abs(p) < 5e4  # bar — not wildly off ambient for a lattice start
