"""Tests for structure builders, RDF, common neighbor analysis, and stress."""

import numpy as np
import pytest

from repro.analysis.cna import (
    CNA_BCC,
    CNA_FCC,
    CNA_HCP,
    CNA_OTHER,
    cna_fractions,
    common_neighbor_analysis,
    fcc_cna_cutoff,
)
from repro.analysis.rdf import average_rdf, radial_distribution
from repro.analysis.stress import StressStrainRecorder, stress_tensor
from repro.analysis.structures import (
    CU_LATTICE,
    fcc_lattice,
    nanocrystal_fcc,
    water_box,
)
from repro.md.box import Box
from repro.md.system import System
from repro.units import EVA3_TO_BAR


class TestStructureBuilders:
    def test_fcc_atom_count_and_density(self):
        sys = fcc_lattice((4, 4, 4))
        assert sys.n_atoms == 4 * 4**3
        density = sys.n_atoms / sys.box.volume
        assert density == pytest.approx(4 / CU_LATTICE**3, rel=1e-12)

    def test_fcc_nearest_neighbor_distance(self):
        sys = fcc_lattice((3, 3, 3))
        d = sys.box.minimum_image(sys.positions[1:] - sys.positions[0])
        r = np.sqrt((d**2).sum(axis=1))
        assert r.min() == pytest.approx(CU_LATTICE / np.sqrt(2), rel=1e-9)

    def test_water_box_composition_and_order(self):
        sys = water_box((3, 3, 3), seed=0)
        assert sys.n_atoms == 81
        assert np.all(sys.types[::3] == 0)  # O first in each molecule
        assert np.all(sys.types[1::3] == 1)
        np.testing.assert_array_equal(sys.mol_ids, np.repeat(np.arange(27), 3))

    def test_water_density_near_ambient(self):
        sys = water_box((4, 4, 4))
        # mass density in g/cm^3
        mass_amu = 64 * (15.9994 + 2 * 1.00794)
        grams = mass_amu * 1.66053906660e-24
        cm3 = sys.box.volume * 1e-24
        assert grams / cm3 == pytest.approx(0.997, rel=0.02)

    def test_water_oh_bond_lengths(self):
        sys = water_box((2, 2, 2), jitter=0.0)
        for m in range(8):
            o, h1 = sys.positions[3 * m], sys.positions[3 * m + 1]
            d = sys.box.minimum_image(h1 - o)
            assert np.linalg.norm(d) == pytest.approx(1.0, abs=1e-9)

    def test_nanocrystal_has_grains_and_gaps(self):
        sys = nanocrystal_fcc(box_length=30.0, n_grains=4, seed=1)
        assert sys.n_atoms > 1500
        assert hasattr(sys, "grain_ids")
        assert len(np.unique(sys.grain_ids)) == 4
        # density below perfect crystal (grain boundaries remove atoms)
        perfect = 4 / CU_LATTICE**3 * sys.box.volume
        assert sys.n_atoms < perfect

    def test_nanocrystal_no_close_contacts(self):
        sys = nanocrystal_fcc(box_length=25.0, n_grains=3, seed=2, min_separation=2.0)
        from repro.md.neighbor import neighbor_pairs

        pi, pj = neighbor_pairs(sys, 2.0)
        disp = sys.box.minimum_image(sys.positions[pj] - sys.positions[pi])
        r = np.sqrt((disp**2).sum(axis=1))
        assert r.size == 0 or r.min() > 1.9

    def test_nanocrystal_reproducible(self):
        a = nanocrystal_fcc(box_length=22.0, n_grains=2, seed=7)
        b = nanocrystal_fcc(box_length=22.0, n_grains=2, seed=7)
        np.testing.assert_array_equal(a.positions, b.positions)


class TestRDF:
    def test_ideal_gas_is_flat(self):
        rng = np.random.default_rng(0)
        n = 4000
        sys = System(
            box=Box([30.0] * 3),
            positions=rng.uniform(0, 30, size=(n, 3)),
            types=np.zeros(n, dtype=np.int64),
            masses=np.ones(1),
        )
        r, g = radial_distribution(sys, r_max=8.0, n_bins=40)
        # beyond the first bins, g ~ 1 for an ideal gas
        assert np.abs(g[5:] - 1.0).mean() < 0.1

    def test_fcc_first_peak_position(self):
        sys = fcc_lattice((5, 5, 5))
        r, g = radial_distribution(sys, r_max=6.0, n_bins=120)
        first_peak = r[np.argmax(g)]
        assert first_peak == pytest.approx(CU_LATTICE / np.sqrt(2), abs=0.1)

    def test_partial_rdf_types(self):
        sys = water_box((4, 4, 4), seed=1)
        r, g_oh = radial_distribution(sys, r_max=4.0, n_bins=80, type_a=0, type_b=1)
        # covalent O-H peak at ~1.0 Å
        peak_r = r[np.argmax(g_oh)]
        assert peak_r == pytest.approx(1.0, abs=0.15)

    def test_r_max_validated(self):
        sys = water_box((3, 3, 3))
        with pytest.raises(ValueError, match="half"):
            radial_distribution(sys, r_max=6.0)

    def test_average_rdf_over_frames(self):
        sys = water_box((4, 4, 4), seed=2)
        frames = [sys.positions.copy(), sys.positions.copy()]
        r, g = average_rdf(frames, template=sys, r_max=4.0, n_bins=40)
        r1, g1 = radial_distribution(sys, r_max=4.0, n_bins=40)
        np.testing.assert_allclose(g, g1, atol=1e-12)

    def test_average_rdf_empty_raises(self):
        with pytest.raises(ValueError, match="no frames"):
            average_rdf([], template=None, r_max=4.0)


class TestCNA:
    def test_perfect_fcc_classified(self):
        sys = fcc_lattice((4, 4, 4))
        labels = common_neighbor_analysis(sys, fcc_cna_cutoff(CU_LATTICE))
        assert np.all(labels == CNA_FCC)

    def test_perfect_hcp_classified(self):
        # ideal hcp: a, c = a*sqrt(8/3); orthorhombic 4-atom cell
        a = 2.55
        c = a * np.sqrt(8.0 / 3.0)
        b_len = a * np.sqrt(3.0)
        basis = np.array(
            [
                [0.0, 0.0, 0.0],
                [0.5, 0.5, 0.0],
                [0.5, 5.0 / 6.0, 0.5],
                [0.0, 1.0 / 3.0, 0.5],
            ]
        )
        reps = (4, 3, 3)
        cell = np.array([a, b_len, c])
        grid = np.stack(
            np.meshgrid(*[np.arange(r) for r in reps], indexing="ij"), axis=-1
        ).reshape(-1, 3)
        pos = (grid[:, None, :] + basis[None]).reshape(-1, 3) * cell
        sys = System(
            box=Box(np.array(reps) * cell),
            positions=pos,
            types=np.zeros(len(pos), dtype=np.int64),
            masses=np.array([63.546]),
        )
        labels = common_neighbor_analysis(sys, 1.205 * a)
        assert np.count_nonzero(labels == CNA_HCP) / len(labels) > 0.95

    def test_perfect_bcc_classified(self):
        a = 2.87
        basis = np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]])
        reps = (4, 4, 4)
        grid = np.stack(
            np.meshgrid(*[np.arange(r) for r in reps], indexing="ij"), axis=-1
        ).reshape(-1, 3)
        pos = (grid[:, None, :] + basis[None]).reshape(-1, 3) * a
        sys = System(
            box=Box(np.array(reps) * a),
            positions=pos,
            types=np.zeros(len(pos), dtype=np.int64),
            masses=np.array([55.845]),
        )
        # bcc cutoff: between 2nd and 3rd shells ~ 1.207a
        labels = common_neighbor_analysis(sys, 1.207 * a)
        assert np.all(labels == CNA_BCC)

    def test_random_gas_is_other(self):
        rng = np.random.default_rng(3)
        sys = System(
            box=Box([20.0] * 3),
            positions=rng.uniform(0, 20, size=(200, 3)),
            types=np.zeros(200, dtype=np.int64),
            masses=np.ones(1),
        )
        labels = common_neighbor_analysis(sys, 3.0)
        assert np.count_nonzero(labels == CNA_OTHER) / 200 > 0.9

    def test_stacking_fault_detected_as_hcp(self):
        """An intrinsic stacking fault in an fcc stack (ABC|BCA along [111])
        shows up as hcp-coordinated planes — the Fig 7 signature."""
        # Build fcc as ABC stacking of (111) planes, then remove one plane's
        # shift to create ...ABCABABCABC... fault.
        a = CU_LATTICE
        nn = a / np.sqrt(2.0)  # in-plane spacing
        dz = a / np.sqrt(3.0)  # (111) interplanar distance
        nx, ny = 6, 6
        n_planes = 12
        shifts = {
            "A": np.array([0.0, 0.0]),
            "B": np.array([nn / 2, nn / (2 * np.sqrt(3))]) * 2,
            "C": np.array([nn, nn / np.sqrt(3)]) * 2,
        }
        # fcc: repeat ABC; fault: skip one letter once
        seq = "ABCABABCABCA"  # one fault in the middle
        pos = []
        b_vec = np.array([nn / 2, nn * np.sqrt(3) / 2])
        for k, letter in enumerate(seq[:n_planes]):
            base = shifts[letter] / 3.0
            for i in range(nx):
                for j in range(ny):
                    xy = i * np.array([nn, 0.0]) + j * b_vec + base
                    pos.append([xy[0] % (nx * nn), xy[1] % (ny * nn * np.sqrt(3) / 1), k * dz])
        pos = np.array(pos)
        box = Box([nx * nn, ny * nn * np.sqrt(3), n_planes * dz])
        sys = System(
            box=box,
            positions=pos,
            types=np.zeros(len(pos), dtype=np.int64),
            masses=np.array([63.546]),
        )
        labels = common_neighbor_analysis(sys, fcc_cna_cutoff(a))
        frac = cna_fractions(labels)
        # the faulted stack must show a clear hcp signature absent in perfect fcc
        assert frac["hcp"] > 0.05

    def test_fractions_sum_to_one(self):
        labels = np.array([CNA_FCC, CNA_FCC, CNA_HCP, CNA_OTHER])
        frac = cna_fractions(labels)
        assert sum(frac.values()) == pytest.approx(1.0)
        assert frac["fcc"] == pytest.approx(0.5)


class TestStress:
    def test_static_stress_matches_pressure(self):
        """For zero velocities, tensile stress = -virial/V (sign flip)."""
        sys = fcc_lattice((3, 3, 3))
        w = np.diag([3.0, 3.0, 3.0])
        sigma = stress_tensor(sys, w)
        expected = -(3.0 / sys.box.volume) * EVA3_TO_BAR * 1e-4
        assert sigma[2, 2] == pytest.approx(expected, rel=1e-12)

    def test_recorder_accumulates(self):
        sys = fcc_lattice((3, 3, 3))
        rec = StressStrainRecorder(axis=2)
        rec.record(sys, np.zeros((3, 3)), 0.0)
        rec.record(sys, -np.eye(3), 0.01)
        strains, stresses = rec.arrays()
        assert len(strains) == 2
        assert strains[1] == pytest.approx(0.01)
        assert rec.peak_stress() == max(stresses)

    def test_kinetic_contribution(self):
        sys = fcc_lattice((2, 2, 2))
        sys.velocities = np.ones_like(sys.positions)
        sigma_hot = stress_tensor(sys, np.zeros((3, 3)))
        # moving atoms add (negative tensile) kinetic pressure
        assert sigma_hot[0, 0] < 0
