"""Concurrency/invariant linter: every rule fires on a synthetic bad file,
stays quiet on the matching good idiom, and honors disable escapes —
plus the dogfood regression that keeps src/repro itself clean.
"""

import json
import textwrap

from repro.analysis.lint import RULES, format_json, format_text, lint_paths

BAD_SOURCE = textwrap.dedent(
    '''
    import random
    import socket
    import threading
    import time

    import numpy as np


    class Worker:
        def __init__(self):
            self.lock_a = threading.Lock()
            self.lock_b = threading.Lock()
            self.cond = threading.Condition(self.lock_a)

        def wait_wrong(self):
            with self.cond:
                if not self.ready:          # L101: wait guarded by if
                    self.cond.wait()

        def order_ab(self):
            with self.lock_a:
                with self.lock_b:
                    pass

        def order_ba(self):                 # L102: inversion vs order_ab
            with self.lock_b:
                with self.lock_a:
                    pass

        def lazy_lock(self):
            self.late = threading.Lock()    # L103: lock outside __init__

        def call_private(self, engine):
            return engine._evaluate_batch([])   # L104: bypasses thread guard


    def bad_default(x, acc=[]):             # L105: mutable default
        acc.append(x)
        return acc


    def swallow():
        try:
            pass
        except:                             # L106: bare except
            pass


    def stamp():
        return time.time()                  # L107: wall clock


    def jitter(n):
        return np.random.rand(n) + random.random()   # L108: global RNG x2


    def untyped(x: int = None):             # L109: None default, non-Optional
        return x


    def leak(host):
        s = socket.socket()                 # L110: no with/finally/transfer
        s.connect((host, 80))
        return s.recv(1)


    def hammer(dial):
        while True:                         # L111: retry with no sleep
            try:
                return dial.connect()
            except OSError:
                pass
    '''
)

GOOD_SOURCE = textwrap.dedent(
    '''
    import socket
    import threading
    import time
    from typing import Optional

    import numpy as np


    class Worker:
        def __init__(self):
            self.lock_a = threading.Lock()
            self.lock_b = threading.Lock()
            self.cond = threading.Condition(self.lock_a)
            self.ready = False
            self.gate = threading.Event()

        def wait_right(self):
            with self.cond:
                while not self.ready:
                    self.cond.wait()

        def wait_event(self):
            self.gate.wait()        # Event.wait needs no while guard

        def order_one(self):
            with self.lock_a:
                with self.lock_b:
                    pass

        def order_two(self):        # same a-then-b order: no inversion
            with self.lock_a, self.lock_b:
                pass


    def typed(x: Optional[int] = None, rng=None):
        rng = rng or np.random.default_rng(0)
        return rng.normal(), time.perf_counter()


    def scoped(host):
        with socket.socket() as s:      # with-block: released on exit
            s.connect((host, 80))
            return s.recv(1)


    def closed_in_finally(path):
        f = open(path)
        try:
            return f.read()
        finally:
            f.close()


    def handed_off():
        s = socket.socket()
        return s                        # ownership transferred to caller


    def registered(pool):
        s = socket.socket()
        pool.adopt(s)                   # ownership transferred to pool


    class Owner:
        def __init__(self):
            self.sock = socket.socket() # ownership transferred to self


    def bounded_dial(dial):
        for _ in range(5):              # bounded attempts: no L111
            try:
                return dial.connect()
            except OSError:
                pass


    def backoff_dial(dial, delay=0.05):
        while True:                     # computed sleep = backoff: no L111
            try:
                return dial.connect()
            except OSError:
                time.sleep(delay)
                delay = min(delay * 2, 1.0)


    def event_gated_dial(dial, gate):
        while True:                     # zero-arg wait blocks, not polls
            gate.wait()
            try:
                return dial.connect()
            except OSError:
                pass
    '''
)


def write_pkg(tmp_path, source, name="bad.py"):
    # Under a dp/ directory so the deterministic-path rules (L107/L108) apply.
    pkg = tmp_path / "dp"
    pkg.mkdir(exist_ok=True)
    path = pkg / name
    path.write_text(source)
    return path


def findings_by_rule(findings):
    out = {}
    for f in findings:
        out.setdefault(f.rule, []).append(f)
    return out


class TestRulesFire:
    def test_every_rule_fires_once(self, tmp_path):
        path = write_pkg(tmp_path, BAD_SOURCE)
        by_rule = findings_by_rule(lint_paths([str(path)]))
        assert sorted(by_rule) == [
            "L101", "L102", "L103", "L104", "L105", "L106",
            "L107", "L108", "L109", "L110", "L111",
        ]
        assert len(by_rule["L108"]) == 2  # np.random.rand and random.random
        for rule in by_rule:
            for f in by_rule[rule]:
                assert f.path.endswith("bad.py") and f.line > 0

    def test_findings_anchor_the_offending_lines(self, tmp_path):
        path = write_pkg(tmp_path, BAD_SOURCE)
        lines = BAD_SOURCE.splitlines()
        by_rule = findings_by_rule(lint_paths([str(path)]))
        anchors = {
            "L101": "self.cond.wait()",
            "L103": "self.late",
            "L104": "_evaluate_batch",
            "L105": "acc=[]",
            "L106": "except:",
            "L107": "time.time()",
            "L109": "x: int = None",
            "L110": "s = socket.socket()",
        }
        for rule, needle in anchors.items():
            f = by_rule[rule][0]
            assert needle in lines[f.line - 1], (rule, lines[f.line - 1])

    def test_clean_idioms_stay_clean(self, tmp_path):
        path = write_pkg(tmp_path, GOOD_SOURCE, name="good.py")
        assert lint_paths([str(path)]) == []

    def test_outside_deterministic_paths_rng_clock_allowed(self, tmp_path):
        path = tmp_path / "tools" / "script.py"
        path.parent.mkdir()
        path.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert lint_paths([str(path)]) == []

    def test_syntax_error_reports_l000(self, tmp_path):
        path = write_pkg(tmp_path, "def broken(:\n", name="broken.py")
        (finding,) = lint_paths([str(path)])
        assert finding.rule == "L000"


class TestUnboundedRetry:
    """L111 in isolation: the hammer patterns fire, real backoff is clean."""

    def test_constant_sleep_still_flagged(self, tmp_path):
        src = textwrap.dedent(
            """
            import time

            def redial(sock, addr):
                while True:
                    try:
                        return sock.connect(addr)
                    except OSError:
                        time.sleep(0.5)
            """
        )
        path = write_pkg(tmp_path, src, name="const.py")
        (finding,) = lint_paths([str(path)])
        assert finding.rule == "L111"
        assert "constant sleep" in finding.message

    def test_busy_spin_flagged_with_connect_name_variants(self, tmp_path):
        src = textwrap.dedent(
            """
            def a(x):
                while True:
                    x.reconnect()

            def b(x, addr):
                while True:
                    x.create_connection(addr)

            def c(x):
                while True:
                    x._connect_once()
            """
        )
        path = write_pkg(tmp_path, src, name="spin.py")
        findings = lint_paths([str(path)])
        assert [f.rule for f in findings] == ["L111"] * 3

    def test_constructor_named_connection_is_not_a_dial(self, tmp_path):
        # The regression that shaped the matcher: `_Connection(...)` (a
        # class) shares the substring but not the word segment "connect".
        src = textwrap.dedent(
            """
            def accept_loop(listener, make_connection):
                while True:
                    sock = listener.accept()
                    conn = make_connection(sock)
                    conn.start()
            """
        )
        path = write_pkg(tmp_path, src, name="accept.py")
        assert lint_paths([str(path)]) == []

    def test_disable_escape(self, tmp_path):
        src = (
            "def f(x):\n"
            "    while True:\n"
            "        x.connect()  # repro-lint: disable=L111\n"
        )
        path = write_pkg(tmp_path, src, name="esc111.py")
        assert lint_paths([str(path)]) == []


class TestDisableEscapes:
    def test_disable_on_same_line(self, tmp_path):
        src = "def f():\n    try:\n        pass\n    except:  # repro-lint: disable=L106\n        pass\n"
        path = write_pkg(tmp_path, src, name="esc1.py")
        assert lint_paths([str(path)]) == []

    def test_disable_on_line_above(self, tmp_path):
        src = (
            "def f():\n    try:\n        pass\n"
            "    # repro-lint: disable=L106\n    except:\n        pass\n"
        )
        path = write_pkg(tmp_path, src, name="esc2.py")
        assert lint_paths([str(path)]) == []

    def test_disable_is_rule_specific(self, tmp_path):
        src = "def f(acc=[]):  # repro-lint: disable=L106\n    return acc\n"
        path = write_pkg(tmp_path, src, name="esc3.py")
        (finding,) = lint_paths([str(path)])
        assert finding.rule == "L105"


class TestReporters:
    def test_text_format(self, tmp_path):
        path = write_pkg(tmp_path, BAD_SOURCE)
        findings = lint_paths([str(path)])
        text = format_text(findings)
        assert "L105" in text and f"{len(findings)} finding" in text
        assert format_text([]) == "repro-lint: clean"

    def test_json_format(self, tmp_path):
        path = write_pkg(tmp_path, BAD_SOURCE)
        findings = lint_paths([str(path)])
        payload = json.loads(format_json(findings))
        assert {f["rule"] for f in payload} >= {"L101", "L105", "L109"}
        assert len(payload) == len(findings)
        assert all({"rule", "path", "line", "col", "message"} <= set(f) for f in payload)

    def test_rule_table_complete(self):
        assert set(RULES) == {f"L1{i:02d}" for i in range(1, 12)}
        assert all(RULES[r] for r in RULES)


class TestDogfood:
    def test_src_repro_is_clean(self):
        # Every historical finding is either fixed or carries an explicit
        # justified disable; new code must keep it that way.
        assert lint_paths(["src/repro"]) == []
