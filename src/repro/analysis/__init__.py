"""repro.analysis — structure builders and observables.

* :mod:`repro.analysis.structures` — fcc crystals, water boxes, Voronoi
  nanocrystals (the Fig 7 microstructure);
* :mod:`repro.analysis.rdf` — radial distribution functions (Fig 4);
* :mod:`repro.analysis.cna` — common neighbor analysis for fcc/hcp/other
  classification and stacking-fault identification (Fig 7);
* :mod:`repro.analysis.stress` — strain-stress recording for tensile runs.
"""

from repro.analysis.structures import (
    fcc_lattice,
    nanocrystal_fcc,
    water_box,
)
from repro.analysis.rdf import radial_distribution
from repro.analysis.cna import common_neighbor_analysis, CNA_FCC, CNA_HCP, CNA_OTHER
from repro.analysis.stress import StressStrainRecorder

__all__ = [
    "fcc_lattice",
    "nanocrystal_fcc",
    "water_box",
    "radial_distribution",
    "common_neighbor_analysis",
    "CNA_FCC",
    "CNA_HCP",
    "CNA_OTHER",
    "StressStrainRecorder",
]
