"""Model zoo: small pre-trained DP models for examples and benchmarks.

The paper's experiments use *trained* water and copper models (their
training is DP-GEN work cited as refs [66, 69]); the evaluation here needs
the same — models good enough to drive stable MD.  The zoo trains laptop-
scale models against the oracle potentials once and caches them next to the
repository (``.model_zoo/``), so every example/bench run after the first is
fast and deterministic.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import numpy as np

from repro.analysis.structures import fcc_lattice, water_box
from repro.dp.data import Dataset, label_frames, sample_md_frames
from repro.dp.model import DeepPot, DPConfig
from repro.dp.serialize import load_model, save_model
from repro.dp.train import TrainConfig, Trainer
from repro.oracles import FlexibleWater, SuttonChenEAM

DEFAULT_CACHE = Path(__file__).resolve().parents[2] / ".model_zoo"


def _cache_path(name: str, cache_dir: Optional[str]) -> Path:
    root = Path(cache_dir) if cache_dir else DEFAULT_CACHE
    root.mkdir(parents=True, exist_ok=True)
    return root / f"{name}.npz"


def water_oracle() -> FlexibleWater:
    """The ab-initio stand-in used to label the zoo water model (r_c=4 Å so
    laptop-size training boxes satisfy minimum image)."""
    return FlexibleWater(cutoff=4.0)


def copper_oracle() -> SuttonChenEAM:
    """The ab-initio stand-in for copper, with cutoffs fitted to small cells."""
    return SuttonChenEAM(r_on=4.0, cutoff=5.0)


def water_config(precision: str = "double") -> DPConfig:
    return DPConfig.tiny(rcut=4.0, precision=precision)


def copper_config(precision: str = "double") -> DPConfig:
    return DPConfig.tiny(
        type_names=("Cu",), sel=(48,), rcut=5.0, precision=precision
    )


def build_water_dataset(n_frames: int = 24, seed: int = 0) -> Dataset:
    base = water_box((3, 3, 3), seed=seed)
    oracle = water_oracle()
    frames = sample_md_frames(
        base, oracle, n_frames=n_frames, stride=10, equilibration=60, seed=seed
    )
    return label_frames(frames, oracle)


def build_copper_dataset(n_frames: int = 16, seed: int = 0) -> Dataset:
    base = fcc_lattice((4, 4, 4))  # 256 atoms, 14.46 Å box
    oracle = copper_oracle()
    frames = sample_md_frames(
        base,
        oracle,
        n_frames=n_frames,
        stride=10,
        equilibration=60,
        temperature=330.0,
        dt=0.002,
        seed=seed,
    )
    return label_frames(frames, oracle)


def _train(config: DPConfig, dataset: Dataset, n_steps: int, seed: int) -> DeepPot:
    model = DeepPot(config, rng=np.random.default_rng(seed))
    dataset.apply_stats(model)
    trainer = Trainer(
        model,
        dataset,
        TrainConfig(
            n_steps=n_steps,
            lr_start=3e-3,
            lr_stop=5e-6,
            decay_steps=max(n_steps // 6, 1),
            log_every=max(n_steps // 4, 1),
            seed=seed,
        ),
    )
    trainer.train()
    return model


def get_water_model(
    precision: str = "double",
    n_steps: int = 900,
    cache_dir: Optional[str] = None,
    force_retrain: bool = False,
) -> DeepPot:
    """A trained tiny water DP model (cached)."""
    name = f"water_tiny_{precision}_{n_steps}"
    path = _cache_path(name, cache_dir)
    if path.exists() and not force_retrain:
        return load_model(str(path))
    dataset = build_water_dataset()
    model = _train(water_config(precision), dataset, n_steps, seed=2024)
    save_model(model, str(path))
    return model


def get_copper_model(
    precision: str = "double",
    n_steps: int = 700,
    cache_dir: Optional[str] = None,
    force_retrain: bool = False,
) -> DeepPot:
    """A trained tiny copper DP model (cached)."""
    name = f"copper_tiny_{precision}_{n_steps}"
    path = _cache_path(name, cache_dir)
    if path.exists() and not force_retrain:
        return load_model(str(path))
    dataset = build_copper_dataset()
    model = _train(copper_config(precision), dataset, n_steps, seed=515)
    save_model(model, str(path))
    return model


def as_mixed_precision(model: DeepPot) -> DeepPot:
    """Clone a double-precision model into the mixed-precision engine.

    This is exactly the paper's Sec 5.2.3 procedure: same parameters, stored
    and executed in fp32 inside the network, fp64 outside.
    """
    from dataclasses import replace

    cfg = replace(model.config, precision="mixed")
    mixed = DeepPot(cfg)
    for vd, vm in zip(model.trainable_variables(), mixed.trainable_variables()):
        vm.assign(vd.value.astype(np.float32))
    mixed.set_stats(model.davg, model.dstd, model.e0)
    return mixed
