"""repro.analysis — structure builders and observables.

* :mod:`repro.analysis.structures` — fcc crystals, water boxes, Voronoi
  nanocrystals (the Fig 7 microstructure);
* :mod:`repro.analysis.rdf` — radial distribution functions (Fig 4);
* :mod:`repro.analysis.cna` — common neighbor analysis for fcc/hcp/other
  classification and stacking-fault identification (Fig 7);
* :mod:`repro.analysis.stress` — strain-stress recording for tensile runs;
* :mod:`repro.analysis.plancheck` — static verifier for compiled execution
  plans (symbolic shape/dtype inference, liveness/alias soundness; P1xx);
* :mod:`repro.analysis.lint` — concurrency/invariant linter over the
  source tree (L1xx; ``repro lint``).

The static-analysis modules are imported lazily by their consumers
(``plan.verify()``, the CLI) rather than re-exported here — importing
:mod:`repro.analysis` for a water box must not pull in the model zoo.
"""

from repro.analysis.structures import (
    fcc_lattice,
    nanocrystal_fcc,
    water_box,
)
from repro.analysis.rdf import radial_distribution
from repro.analysis.cna import common_neighbor_analysis, CNA_FCC, CNA_HCP, CNA_OTHER
from repro.analysis.stress import StressStrainRecorder

__all__ = [
    "fcc_lattice",
    "nanocrystal_fcc",
    "water_box",
    "radial_distribution",
    "common_neighbor_analysis",
    "CNA_FCC",
    "CNA_HCP",
    "CNA_OTHER",
    "StressStrainRecorder",
]
