"""Berendsen pressure coupling — weak isotropic barostat (LAMMPS ``fix
press/berendsen``).

Rescales the box (and atom coordinates affinely) toward a target pressure
each step: mu = (1 - dt/tau_p * kappa * (P0 - P))^(1/3).  Used to relax
residual pressure in as-built or deformed cells before production runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.system import System
from repro.md.thermo import compute_pressure


@dataclass
class BerendsenBarostat:
    """Isotropic Berendsen pressure coupling.

    Parameters
    ----------
    pressure:
        Target pressure in bar.
    tau:
        Coupling time in ps.
    compressibility:
        kappa in 1/bar (default: liquid water's 4.6e-5).
    max_scale:
        Per-step clamp on the linear scale factor, for stability.
    """

    pressure: float = 1.0
    tau: float = 1.0
    compressibility: float = 4.6e-5
    max_scale: float = 0.01

    def apply(self, system: System, virial: np.ndarray, dt: float) -> float:
        """Rescale box+positions toward the target; returns the scale used."""
        p_now = compute_pressure(system, virial)
        factor = 1.0 - (dt / self.tau) * self.compressibility * (
            self.pressure - p_now
        )
        mu = factor ** (1.0 / 3.0)
        mu = float(np.clip(mu, 1.0 - self.max_scale, 1.0 + self.max_scale))
        system.box.lengths *= mu
        system.positions *= mu
        return mu
