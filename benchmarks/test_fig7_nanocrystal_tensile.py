"""Fig 7 — nanocrystalline copper under tensile deformation, with CNA.

The paper: 10.4M-atom, 64-grain nanocrystal annealed at 300 K then pulled to
10% strain at 5e8 s^-1; common neighbor analysis colors grains (fcc),
boundaries (other), and stacking faults (hcp).

Laptop scale: a few-thousand-atom Voronoi nanocrystal driven by the oracle
EAM (the fast path; the DP-driven variant is examples/nanocrystal_tensile.py).
Shape targets: the as-built structure is majority-crystalline inside grains,
the stress-strain curve rises elastically then yields, and deformation grows
the defected (non-fcc) fraction.  At ~1.5 nm grain size plasticity is
boundary-mediated — the inverse Hall-Petch regime of the paper's ref [49].
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro.analysis.cna import cna_fractions, common_neighbor_analysis, fcc_cna_cutoff
from repro.analysis.stress import StressStrainRecorder
from repro.analysis.structures import CU_LATTICE, nanocrystal_fcc
from repro.md import Berendsen, Deform, Simulation, boltzmann_velocities
from repro.md.neighbor import fitted_neighbor_list
from repro.zoo import copper_oracle

STATE = {}


def run_pipeline():
    system = nanocrystal_fcc(box_length=26.0, n_grains=4, seed=3, min_separation=2.1)
    labels0 = common_neighbor_analysis(system, fcc_cna_cutoff(CU_LATTICE))
    frac0 = cna_fractions(labels0)

    potential = copper_oracle()
    dt = 0.002
    boltzmann_velocities(system, 300.0, seed=5)
    sim = Simulation(
        system,
        potential,
        dt=dt,
        integrator=Berendsen(temperature=300.0, tau=0.05),
        neighbor=fitted_neighbor_list(system, potential.cutoff),
        thermo_every=50,
    )
    sim.run(80)  # anneal
    labels1 = common_neighbor_analysis(system, fcc_cna_cutoff(CU_LATTICE))
    frac1 = cna_fractions(labels1)

    deform_steps, strain = 240, 0.06
    deform = Deform(
        axis=2, strain_rate=strain / (deform_steps * dt), start_step=sim.step_count
    )
    sim.deform = deform
    recorder = StressStrainRecorder(axis=2)

    def record(s):
        if s.step_count % 20 == 0:
            recorder.record(
                s.system, s.last_result().virial, deform.strain_at(s.step_count, dt)
            )

    sim.run(deform_steps, callback=record)
    labels2 = common_neighbor_analysis(system, fcc_cna_cutoff(CU_LATTICE))
    frac2 = cna_fractions(labels2)
    return system, frac0, frac1, frac2, recorder


def test_nanocrystal_pipeline(benchmark):
    result = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    STATE["result"] = result


def test_zz_report_and_shapes(benchmark):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    system, frac0, frac1, frac2, recorder = STATE["result"]
    strains, stresses = recorder.arrays()

    print_header("Fig 7 — nanocrystalline Cu tensile deformation (laptop scale)")
    print(f"{system.n_atoms} atoms, 4 grains, 26 Å cell "
          f"(paper: 10.4M atoms, 64 grains, 500 Å)")
    print(f"{'stage':<22} {'fcc':>7} {'hcp':>7} {'other':>7}")
    for tag, f in (("as built", frac0), ("annealed", frac1),
                   ("after 6% strain", frac2)):
        print(f"{tag:<22} {f['fcc']:>6.1%} {f['hcp']:>6.1%} {f['other']:>6.1%}")
    print("\nstrain-stress (z):")
    for e, s in zip(strains, stresses):
        print(f"  {e:>6.3f}  {s:>8.2f} GPa")
    print(f"peak stress: {recorder.peak_stress():.2f} GPa")

    # Shape assertions.
    assert system.n_atoms > 1000
    assert frac0["fcc"] > 0.25  # grains are crystalline as built
    # the material carries multi-GPa tensile load and yields: the curve
    # peaks and then softens (flow) rather than rising monotonically
    assert recorder.peak_stress() > 2.0
    assert stresses[-1] < recorder.peak_stress() * 0.98
    # deformation creates defects: non-fcc fraction grows
    assert (1 - frac2["fcc"]) > (1 - frac1["fcc"])
