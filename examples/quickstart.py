"""Quickstart: run Deep Potential molecular dynamics on liquid water.

This is the 60-second tour of the reproduction:

1. get a (cached) trained tiny DP water model from the zoo;
2. build a liquid-water cell and draw 330 K Boltzmann velocities (Sec 6.1);
3. run velocity-Verlet MD with the paper's neighbor-list protocol;
4. print the thermodynamic log and the time-to-solution metric of Table 1.

Run:  python examples/quickstart.py [--steps N] [--molecules M]
"""

from __future__ import annotations

import argparse

from repro.analysis.structures import water_box
from repro.dp.pair import DeepPotPair
from repro.md import Simulation, boltzmann_velocities
from repro.md.neighbor import fitted_neighbor_list
from repro.zoo import get_water_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=100, help="MD steps")
    parser.add_argument(
        "--molecules", type=int, default=3, help="molecules per box edge"
    )
    parser.add_argument(
        "--precision", choices=("double", "mixed"), default="double"
    )
    args = parser.parse_args()

    print("Loading the zoo water model (trains once, then cached)...")
    model = get_water_model()
    if args.precision == "mixed":
        from repro.zoo import as_mixed_precision

        model = as_mixed_precision(model)

    n = args.molecules
    system = water_box((n, n, n), seed=7)
    boltzmann_velocities(system, temperature=330.0, seed=7)
    print(
        f"System: {system.n_atoms} atoms ({n**3} H2O), "
        f"box {system.box.lengths[0]:.2f} Å, precision={args.precision}"
    )

    pair = DeepPotPair(model)
    sim = Simulation(
        system,
        pair,
        dt=0.0005,  # the paper's 0.5 fs water timestep
        neighbor=fitted_neighbor_list(system, pair.cutoff),
        thermo_every=20,  # the paper's output cadence
    )
    sim.run(args.steps)

    print(f"\n{'step':>6} {'time/ps':>8} {'E_pot/eV':>12} {'E_tot/eV':>12} "
          f"{'T/K':>8} {'P/bar':>10}")
    for row in sim.thermo.rows:
        print(
            f"{row.step:>6} {row.time_ps:>8.3f} {row.potential_energy:>12.4f} "
            f"{row.total_energy:>12.4f} {row.temperature:>8.1f} "
            f"{row.pressure:>10.1f}"
        )

    tts = sim.time_to_solution()
    print(f"\nMD loop time: {sim.loop_seconds:.2f} s for {sim.step_count} steps")
    print(f"Time-to-solution: {tts:.3e} s/step/atom (Table 1 metric)")
    print(f"Neighbor list rebuilds: {sim.neighbor.n_builds}")


if __name__ == "__main__":
    main()
