"""Gradient correctness for tfmini: first order, broadcast, and grad-of-grad.

Every VJP is validated against central finite differences, since the entire
DP force/virial machinery and the force-matching training loss rest on them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.tfmini as tf


def numeric_grad(run_loss, var, eps=1e-6):
    """Central finite-difference gradient of a scalar loss w.r.t. a Variable."""
    g = np.zeros_like(var.value)
    flat = var.value.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        lp = float(run_loss())
        flat[i] = old - eps
        lm = float(run_loss())
        flat[i] = old
        gflat[i] = (lp - lm) / (2 * eps)
    return g


def check_grads(build_loss, variables, rtol=1e-5, atol=1e-7):
    loss = build_loss()
    grads = tf.grad(loss, variables)
    sess = tf.Session()
    analytic = sess.run(grads)
    for var, g in zip(variables, analytic):
        num = numeric_grad(lambda: sess.run(loss), var)
        np.testing.assert_allclose(g, num, rtol=rtol, atol=atol, err_msg=var.name)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestFirstOrder:
    def test_matmul_grad(self, rng):
        a = tf.variable(rng.normal(size=(4, 3)), name="a")
        b = tf.variable(rng.normal(size=(3, 5)), name="b")
        check_grads(lambda: tf.reduce_sum(tf.square(tf.matmul(a, b))), [a, b])

    def test_gemm_grad(self, rng):
        a = tf.variable(rng.normal(size=(4, 3)), name="a")
        w = tf.variable(rng.normal(size=(3, 5)), name="w")
        c = tf.variable(rng.normal(size=5), name="c")
        check_grads(lambda: tf.reduce_sum(tf.square(tf.gemm(a, w, c))), [a, w, c])

    def test_bmm_grad(self, rng):
        a = tf.variable(rng.normal(size=(2, 3, 4)), name="a")
        b = tf.variable(rng.normal(size=(2, 4, 2)), name="b")
        check_grads(lambda: tf.reduce_sum(tf.square(tf.bmm(a, b))), [a, b])

    def test_tanh_grad(self, rng):
        x = tf.variable(rng.normal(size=(3, 3)), name="x")
        check_grads(lambda: tf.reduce_sum(tf.tanh(x)), [x])

    def test_broadcast_add_grad(self, rng):
        x = tf.variable(rng.normal(size=(6, 3)), name="x")
        b = tf.variable(rng.normal(size=3), name="b")
        check_grads(lambda: tf.reduce_sum(tf.square(x + b)), [x, b])

    def test_mul_broadcast_grad(self, rng):
        x = tf.variable(rng.normal(size=(4, 3)), name="x")
        s = tf.variable(rng.normal(size=(1, 3)), name="s")
        check_grads(lambda: tf.reduce_sum(tf.square(x * s)), [x, s])

    def test_concat_grad(self, rng):
        a = tf.variable(rng.normal(size=(2, 3)), name="a")
        b = tf.variable(rng.normal(size=(2, 4)), name="b")
        check_grads(lambda: tf.reduce_sum(tf.square(tf.concat(a, b, axis=1))), [a, b])

    def test_self_concat_grad_doubles(self, rng):
        # d/dx sum(concat(x,x)) = 2 — the case the CONCAT+SUM pass targets.
        x = tf.variable(rng.normal(size=(2, 3)), name="x")
        g = tf.grad(tf.reduce_sum(tf.concat(x, x, axis=1)), [x])[0]
        np.testing.assert_allclose(tf.Session().run(g), np.full((2, 3), 2.0))

    def test_slice_grad(self, rng):
        x = tf.variable(rng.normal(size=(3, 8)), name="x")
        check_grads(lambda: tf.reduce_sum(tf.square(tf.slice_cols(x, 2, 6))), [x])

    def test_reshape_transpose_grad(self, rng):
        x = tf.variable(rng.normal(size=(3, 4)), name="x")
        check_grads(
            lambda: tf.reduce_sum(tf.square(tf.transpose(tf.reshape(x, (2, 6))))), [x]
        )

    def test_reduce_mean_grad(self, rng):
        x = tf.variable(rng.normal(size=(5, 2)), name="x")
        check_grads(lambda: tf.square(tf.reduce_mean(x)), [x])

    def test_reduce_sum_axis_grad(self, rng):
        x = tf.variable(rng.normal(size=(4, 3)), name="x")
        check_grads(lambda: tf.reduce_sum(tf.square(tf.reduce_sum(x, axis=0))), [x])

    def test_mlp_composite_grad(self, rng):
        w1 = tf.variable(rng.normal(size=(3, 8)) * 0.5, name="w1")
        b1 = tf.variable(rng.normal(size=8) * 0.1, name="b1")
        w2 = tf.variable(rng.normal(size=(8, 1)) * 0.5, name="w2")
        x = tf.constant(rng.normal(size=(10, 3)))

        def loss():
            h = tf.tanh(tf.matmul(x, w1) + b1)
            return tf.reduce_sum(tf.square(tf.matmul(h, w2)))

        check_grads(loss, [w1, b1, w2])

    def test_unconnected_returns_none(self, rng):
        x = tf.variable(rng.normal(size=3), name="x")
        y = tf.variable(rng.normal(size=3), name="y")
        gs = tf.grad(tf.reduce_sum(tf.square(x)), [x, y])
        assert gs[0] is not None
        assert gs[1] is None

    def test_grad_accumulates_fanout(self, rng):
        # x used twice: d/dx [sum(x*x + x)] = 2x + 1.
        x = tf.variable(rng.normal(size=4), name="x")
        g = tf.grad(tf.reduce_sum(x * x + x), [x])[0]
        np.testing.assert_allclose(tf.Session().run(g), 2 * x.value + 1)


class TestSecondOrder:
    def test_grad_of_grad_scalar(self):
        # f(x) = sum(tanh(x)^2); check d/dx sum((df/dx)^2) numerically.
        rng = np.random.default_rng(3)
        x = tf.variable(rng.normal(size=5), name="x")
        f = tf.reduce_sum(tf.square(tf.tanh(x)))
        gx = tf.grad(f, [x])[0]
        loss2 = tf.reduce_sum(tf.square(gx))
        g2 = tf.grad(loss2, [x])[0]
        sess = tf.Session()
        num = numeric_grad(lambda: sess.run(loss2), x, eps=1e-5)
        np.testing.assert_allclose(sess.run(g2), num, rtol=1e-4, atol=1e-7)

    def test_force_matching_pattern(self):
        """The training pattern: loss on a gradient, differentiated w.r.t. params."""
        rng = np.random.default_rng(11)
        w = tf.variable(rng.normal(size=(3, 4)) * 0.7, name="w")
        b = tf.variable(rng.normal(size=4) * 0.1, name="b")
        wout = tf.variable(rng.normal(size=(4, 1)) * 0.7, name="wout")
        pos = tf.placeholder("pos")
        pos_val = rng.normal(size=(6, 3))

        energy = tf.reduce_sum(tf.matmul(tf.tanh(tf.matmul(pos, w) + b), wout))
        force = tf.grad(energy, [pos])[0]  # "forces" = dE/dpos
        target = tf.constant(rng.normal(size=(6, 3)))
        loss = tf.reduce_sum(tf.square(force - target))
        grads = tf.grad(loss, [w, b, wout])
        sess = tf.Session()
        analytic = sess.run(grads, {pos: pos_val})
        for var, g in zip([w, b, wout], analytic):
            num = numeric_grad(lambda: sess.run(loss, {pos: pos_val}), var, eps=1e-5)
            np.testing.assert_allclose(g, num, rtol=1e-4, atol=1e-7, err_msg=var.name)


class TestGradProperties:
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_linear_op_grad_is_input_independent(self, rows, cols, seed):
        """For f(x)=sum(x@W), grad is W-row-sums broadcast — independent of x."""
        rng = np.random.default_rng(seed)
        w_val = rng.normal(size=(cols, 3))
        x = tf.variable(rng.normal(size=(rows, cols)), name="x")
        g = tf.grad(tf.reduce_sum(tf.matmul(x, tf.constant(w_val))), [x])[0]
        out = tf.Session().run(g)
        expected = np.tile(w_val.sum(axis=1), (rows, 1))
        np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-12)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_sum_rule(self, seed):
        """grad(f+g) == grad(f) + grad(g)."""
        rng = np.random.default_rng(seed)
        x = tf.variable(rng.normal(size=4), name="x")
        f = tf.reduce_sum(tf.square(x))
        g = tf.reduce_sum(tf.tanh(x))
        sess = tf.Session()
        lhs = sess.run(tf.grad(f + g, [x])[0])
        rhs = sess.run(tf.grad(f, [x])[0]) + sess.run(tf.grad(g, [x])[0])
        np.testing.assert_allclose(lhs, rhs, rtol=1e-12, atol=1e-12)
