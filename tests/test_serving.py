"""Semantics of the micro-batching inference service (:mod:`repro.serving`).

Eight contracts, all asserted deterministically (no wall-clock thresholds —
see the bench-timing policy):

1. **correspondence** — every future resolves to *its own* frame's result,
   bitwise identical to a direct ``DeepPot.evaluate``, under concurrent
   submitters and regardless of batch composition or worker interleaving;
2. **FIFO fairness** — batches take requests in submission order; requests
   for other models keep their queue positions (no reordering, no mixing);
3. **backpressure** — a bounded queue rejects (or blocks) submissions at
   the configured depth and counts the rejections;
4. **shutdown** — drain completes every pending request, no-drain cancels
   them; either way the workers exit and later submissions are refused;
5. **stats** — the ``ServerStats`` counter block is an exact, reproducible
   function of the request schedule;
6. **worker pool** — per-model pools run each model's batches on that
   model's own worker over its own engine (never shared across threads),
   and shared pools give each worker private engines;
7. **deadlines** — a request abandoned at its client deadline is cancelled
   and counted exactly once, never completed; future metadata exists before
   any worker can resolve the future; hung client threads are joined
   against a deadline instead of forever;
8. **result cache** — repeated frames replay bitwise-identical results
   without re-entering the queue, ``invalidate`` forces recomputation,
   capacity evicts FIFO, and cached results are private copies (no client
   can corrupt another's replay by mutating a returned array).

Determinism device: ``server.paused()`` parks the workers between batches,
so a submission schedule can be staged in full before coalescing begins —
N pre-queued same-model requests then execute in exactly
``ceil(N / max_batch)`` batches.
"""

import threading
import time
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FutureTimeout

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs
from repro.serving import (
    CrashWorker,
    FaultPlan,
    InferenceClient,
    InferenceRequest,
    InferenceServer,
    MicroBatchScheduler,
    QueueFull,
    RequestQueue,
    ServerClosed,
    ServerStats,
    WorkerCrashed,
)

WAIT = 60.0  # generous future timeouts; the suite never sleeps this long


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


@pytest.fixture(scope="module")
def model_b(model):
    """A second, independently seeded model over the same type vocabulary —
    lets multi-model tests share one pool of water frames."""
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0, seed=7))


@pytest.fixture(scope="module")
def base():
    return water_box((2, 2, 2), seed=0)


def perturbed(base, n, seed0=0, scale=0.02):
    out = []
    for k in range(n):
        s = base.copy()
        rng = np.random.default_rng(seed0 + k)
        s.positions = s.positions + rng.normal(scale=scale, size=s.positions.shape)
        out.append(s)
    return out


def direct(model, system):
    return model.evaluate(system, *neighbor_pairs(system, model.config.rcut))


def assert_bitwise(result, reference):
    assert result.energy == reference.energy
    assert np.array_equal(result.forces, reference.forces)
    assert np.array_equal(result.virial, reference.virial)
    assert np.array_equal(result.atom_energies, reference.atom_energies)


class TestCorrespondence:
    def test_concurrent_submitters_bitwise(self, model, base):
        """4 closed-loop clients; every result corresponds to its own frame
        and is bitwise identical to a direct evaluation."""
        server = InferenceServer(
            {"water": model}, max_batch=4, max_wait_us=2000
        )
        served: dict[int, list] = {}

        def run_client(tid):
            client = server.client("water")
            frames = perturbed(base, 5, seed0=100 * tid)
            served[tid] = [(f, client.evaluate(f, timeout=WAIT)) for f in frames]

        threads = [
            threading.Thread(target=run_client, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.stop()
        assert server.stats.snapshot()["requests_completed"] == 20
        for results in served.values():
            for frame, result in results:
                assert_bitwise(result, direct(model, frame))

    def test_pipelined_futures_resolve_in_submission_order(self, model, base):
        frames = perturbed(base, 10)
        server = InferenceServer({"water": model}, max_batch=4, autostart=False)
        client = server.client()
        futures = [client.submit(f) for f in frames]
        server.start()
        results = [f.result(WAIT) for f in futures]
        server.stop()
        for frame, result in zip(frames, results):
            assert_bitwise(result, direct(model, frame))

    def test_mixed_boxes_take_general_path_bitwise(self, model, base):
        """Frames with different boxes cannot share the single-lexsort fast
        path; the coalesced batch falls back to per-frame staging and stays
        bitwise."""
        small = perturbed(base, 1)[0]
        big = water_box((3, 3, 3), seed=3)
        server = InferenceServer({"water": model}, max_batch=4, autostart=False)
        futures = [server.submit("water", s) for s in (small, big)]
        server.start()
        results = [f.result(WAIT) for f in futures]
        server.stop()
        engine = server._engines["water"]
        assert engine.general_batches == 1
        assert engine.stacked_batches == 0
        assert server.stats.snapshot()["batches"] == 1
        assert_bitwise(results[0], direct(model, small))
        assert_bitwise(results[1], direct(model, big))

    def test_evaluate_many_round_trip(self, model, base):
        frames = perturbed(base, 6, seed0=50)
        with InferenceServer({"water": model}, max_batch=8) as server:
            results = server.client("water").evaluate_many(frames, timeout=WAIT)
        for frame, result in zip(frames, results):
            assert_bitwise(result, direct(model, frame))


class TestFifoFairness:
    def test_single_model_batches_are_fifo_runs(self, model, base):
        frames = perturbed(base, 10)
        server = InferenceServer({"water": model}, max_batch=4, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        server.start()
        for f in futures:
            f.result(WAIT)
        server.stop()
        # per-model pool: the model's own worker (id == model name) ran all
        assert server.stats.batch_log == [
            ("water", (0, 1, 2, 3), "water"),
            ("water", (4, 5, 6, 7), "water"),
            ("water", (8, 9), "water"),
        ]

    def test_interleaved_models_never_mix_and_keep_order(
        self, model, model_b, base
    ):
        """Batches gather same-model requests FIFO, skipping (not
        reordering) the other model's requests.  A single shared worker
        (workers=1) pins the global batch order deterministically."""
        frames = perturbed(base, 8)
        server = InferenceServer(
            {"a": model, "b": model_b}, max_batch=4, workers=1, autostart=False
        )
        futures = []
        for k, frame in enumerate(frames):
            futures.append(server.submit("a" if k % 2 == 0 else "b", frame))
        server.start()
        results = [f.result(WAIT) for f in futures]
        server.stop()
        assert server.stats.batch_log == [
            ("a", (0, 2, 4, 6), "pool-0"),
            ("b", (1, 3, 5, 7), "pool-0"),
        ]
        for k, (frame, result) in enumerate(zip(frames, results)):
            assert_bitwise(result, direct(model if k % 2 == 0 else model_b, frame))

    def test_max_batch_one_serializes(self, model, base):
        frames = perturbed(base, 3)
        server = InferenceServer({"water": model}, max_batch=1, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        server.start()
        for f in futures:
            f.result(WAIT)
        server.stop()
        snap = server.stats.snapshot()
        assert snap["batches"] == 3
        assert snap["max_batch_frames"] == 1


class TestBackpressure:
    def test_bounded_queue_rejects_when_full(self, model, base):
        frames = perturbed(base, 5)
        server = InferenceServer(
            {"water": model}, max_batch=8, max_queue=3, autostart=False
        )
        held = [server.submit("water", f, block=False) for f in frames[:3]]
        with pytest.raises(QueueFull):
            server.submit("water", frames[3], block=False)
        with pytest.raises(QueueFull):
            server.submit("water", frames[4], block=True, timeout=0.05)
        snap = server.stats.snapshot()
        assert snap["requests_rejected"] == 2
        assert snap["requests_submitted"] == 3
        server.start()
        for f in held:
            f.result(WAIT)
        server.stop()
        assert server.stats.snapshot()["requests_completed"] == 3

    def test_client_evaluate_timeout_bounds_the_enqueue_wait(self, model, base):
        """A stalled server with a full queue must not hang a synchronous
        client past its timeout — admission is bounded too."""
        server = InferenceServer(
            {"water": model}, max_batch=8, max_queue=1, autostart=False
        )
        server.submit("water", base)  # fills the queue; worker never runs
        client = server.client("water")
        with pytest.raises(QueueFull):
            client.evaluate(perturbed(base, 1)[0], timeout=0.05)
        with pytest.raises(QueueFull):
            client.evaluate_many(perturbed(base, 1, seed0=9), timeout=0.05)
        server.stop(drain=False)

    def test_blocked_submitter_proceeds_when_space_frees(self, model, base):
        frames = perturbed(base, 4)
        server = InferenceServer(
            {"water": model}, max_batch=2, max_queue=3, autostart=False
        )
        first = [server.submit("water", f) for f in frames[:3]]
        fourth = {}

        def blocked_submit():
            fourth["future"] = server.submit("water", frames[3], block=True)

        t = threading.Thread(target=blocked_submit)
        t.start()
        server.start()  # worker drains the queue, freeing space
        t.join(WAIT)
        assert not t.is_alive()
        for f in first + [fourth["future"]]:
            assert f.result(WAIT) is not None
        server.stop()
        assert server.stats.snapshot()["requests_completed"] == 4


class TestShutdown:
    def test_drain_completes_pending_requests(self, model, base):
        frames = perturbed(base, 5)
        server = InferenceServer({"water": model}, max_batch=2, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        server.start()
        server.stop(drain=True, timeout=WAIT)
        assert not server.running
        for frame, f in zip(frames, futures):
            assert_bitwise(f.result(timeout=0), direct(model, frame))
        snap = server.stats.snapshot()
        assert snap["requests_completed"] == 5
        assert snap["requests_cancelled"] == 0

    def test_no_drain_cancels_pending_futures(self, model, base):
        frames = perturbed(base, 5)
        server = InferenceServer({"water": model}, max_batch=2, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        # worker never started: everything is still pending
        server.stop(drain=False, timeout=WAIT)
        for f in futures:
            assert f.cancelled()
            with pytest.raises(CancelledError):
                f.result(timeout=0)
        snap = server.stats.snapshot()
        assert snap["requests_cancelled"] == 5
        assert snap["requests_completed"] == 0

    def test_submit_after_stop_is_refused(self, model, base):
        server = InferenceServer({"water": model}, max_batch=2)
        server.stop()
        with pytest.raises(ServerClosed):
            server.submit("water", base)
        with pytest.raises(ServerClosed):
            server.start()

    def test_stop_while_paused_still_drains(self, model, base):
        frames = perturbed(base, 3)
        server = InferenceServer({"water": model}, max_batch=4)
        server.pause()
        futures = [server.submit("water", f) for f in frames]
        server.stop(drain=True, timeout=WAIT)
        for f in futures:
            assert f.result(timeout=0) is not None
        # maximal coalescing: everything was pending when the worker woke
        assert server.stats.snapshot()["batches"] == 1

    def test_closed_loop_helper_reraises_client_failures(self, model, base):
        """A broken serving stack must surface as an error from the load
        helper, never as a silently empty result set (which would let
        `repro validate` pass vacuously)."""
        from repro.serving import perturbed_frames, run_closed_loop_clients

        class BoomEngine:
            def evaluate_batch(self, systems, pair_lists, backend="optimized"):
                raise RuntimeError("boom")

        server = InferenceServer({"water": model}, max_batch=4)
        server._engines["water"] = BoomEngine()
        with pytest.raises(RuntimeError, match="serving client 0 failed"):
            run_closed_loop_clients(
                server, "water", {0: perturbed_frames(base, 1)}, timeout=WAIT
            )
        server.stop(drain=False)

    def test_failed_batch_poisons_only_its_futures(self, model, base):
        class BoomEngine:
            def evaluate_batch(self, systems, pair_lists, backend="optimized"):
                raise RuntimeError("boom")

        frames = perturbed(base, 2)
        server = InferenceServer(
            {"water": model, "boom": model}, max_batch=4, autostart=False
        )
        server._engines["boom"] = BoomEngine()
        bad = server.submit("boom", frames[0])
        good = server.submit("water", frames[1])
        server.start()
        with pytest.raises(RuntimeError, match="boom"):
            bad.result(WAIT)
        assert_bitwise(good.result(WAIT), direct(model, frames[1]))
        server.stop()
        snap = server.stats.snapshot()
        assert snap["requests_failed"] == 1
        assert snap["requests_completed"] == 1


class TestStatsAndRegistry:
    def test_counters_are_exact(self, model, base):
        frames = perturbed(base, 5)
        server = InferenceServer({"water": model}, max_batch=4, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        server.start()
        for f in futures:
            f.result(WAIT)
        server.stop()
        snap = server.stats.snapshot()
        assert snap["requests_submitted"] == 5
        assert snap["requests_completed"] == 5
        assert snap["requests_failed"] == 0
        assert snap["batches"] == 2  # ceil(5 / 4)
        assert snap["frames"] == 5
        assert snap["occupancy"] == pytest.approx(2.5)
        assert snap["max_batch_frames"] == 4
        assert snap["frames_per_model"] == {"water": 5}
        assert server.stats.pending() == 0
        report = server.stats.report()
        assert "occupancy 2.50" in report
        assert "water: 5" in report

    def test_batch_log_is_bounded_but_counters_are_complete(self):
        stats = ServerStats(batch_log_limit=2)
        for k in range(5):
            stats.record_batch("m", (k,), (0.0,), worker="w0")
        assert stats.batch_log == [("m", (3,), "w0"), ("m", (4,), "w0")]
        assert stats.batches == 5
        assert stats.frames == 5
        assert stats.frames_per_worker == {"w0": 5}
        assert stats.batches_per_worker == {"w0": 5}

    def test_registry_rejects_duplicates_and_unknown_names(self, model, base):
        server = InferenceServer({"water": model}, autostart=False)
        with pytest.raises(ValueError):
            server.register("water", model)
        with pytest.raises(KeyError):
            server.submit("copper", base)
        with pytest.raises(KeyError):
            InferenceClient(server, "copper")
        assert server.model_names() == ["water"]
        assert server.model("water") is model

    def test_default_client_needs_unambiguous_model(self, model, model_b):
        server = InferenceServer({"a": model, "b": model_b}, autostart=False)
        with pytest.raises(ValueError):
            server.client()
        assert server.client("a").model == "a"

    def test_client_pair_list_validation(self, model, base):
        server = InferenceServer({"water": model}, autostart=False)
        client = server.client()
        with pytest.raises(ValueError):
            client.evaluate_many([base, base], pair_lists=[(None, None)])

    def test_future_carries_request_metadata(self, model, base):
        server = InferenceServer({"water": model}, autostart=False)
        fut = server.submit("water", base)
        assert isinstance(fut.request, InferenceRequest)
        assert fut.request.seq == 0
        assert fut.request.model == "water"
        server.stop(drain=False)


class TestQueueAndScheduler:
    def test_seq_stamping_is_admission_order(self):
        q = RequestQueue(maxsize=4)
        reqs = [
            InferenceRequest("m", None, None, None) for _ in range(3)
        ]
        for r in reqs:
            q.put(r)
        assert [r.seq for r in reqs] == [0, 1, 2]
        assert len(q) == 3

    def test_pop_batch_gathers_same_key_fifo(self):
        q = RequestQueue(maxsize=0)
        for name in ["a", "b", "a", "a", "b"]:
            q.put(InferenceRequest(name, None, None, None))
        batch = q.pop_batch(max_batch=2, max_wait=0.0)
        assert [r.seq for r in batch] == [0, 2]
        batch = q.pop_batch(max_batch=8, max_wait=0.0)
        assert [r.seq for r in batch] == [1, 4]  # b-requests kept their order
        batch = q.pop_batch(max_batch=8, max_wait=0.0)
        assert [r.seq for r in batch] == [3]

    def test_pop_batch_only_restricts_to_one_key(self):
        """A per-model consumer draws exclusively on its model, leaving
        other models' requests (even older ones) untouched."""
        q = RequestQueue(maxsize=0)
        for name in ["a", "a", "b", "a", "b"]:
            q.put(InferenceRequest(name, None, None, None))
        batch = q.pop_batch(max_batch=8, max_wait=0.0, only="b")
        assert [r.seq for r in batch] == [2, 4]
        assert q.pending_by_key() == {"a": 3}
        batch = q.pop_batch(max_batch=2, max_wait=0.0, only="a")
        assert [r.seq for r in batch] == [0, 1]

    def test_per_key_counts_and_single_key_derivation(self):
        """The queue maintains per-key pending counts under its lock and
        computes each request's key exactly once, at admission — the fill
        loop never rescans the queue re-deriving keys (the O(queue)-per-
        wakeup fix)."""
        q = RequestQueue(maxsize=0)
        for name in ["a", "b", "a", "b", "b", "c"]:
            q.put(InferenceRequest(name, None, None, None))
        assert q.pending_by_key() == {"a": 2, "b": 3, "c": 1}
        assert q.key_calls == 6
        q.pop_batch(max_batch=8, max_wait=0.0)        # takes the a-run
        q.pop_batch(max_batch=1, max_wait=0.0, only="b")
        assert q.pending_by_key() == {"b": 2, "c": 1}
        assert len(q) == 3
        assert q.key_calls == 6  # pops never re-derived a key

    def test_pop_batch_drops_cancelled_requests(self):
        """Requests whose futures were cancelled while queued are discarded
        (reported via on_drop exactly once), never returned in a batch."""
        drops = []
        q = RequestQueue(maxsize=0, on_drop=drops.append)
        reqs = [InferenceRequest("m", None, None, None) for _ in range(4)]
        for r in reqs:
            q.put(r)
        assert reqs[0].future.cancel()
        assert reqs[2].future.cancel()
        batch = q.pop_batch(max_batch=8, max_wait=0.0)
        assert [r.seq for r in batch] == [1, 3]
        assert sum(drops) == 2
        assert len(q) == 0

    def test_cancel_frees_bounded_slot_without_a_consumer(self):
        """Cancelling a queued request frees its bounded-queue slot
        immediately — a blocked submitter must not starve behind dead
        requests when no worker is consuming."""
        drops = []
        q = RequestQueue(maxsize=2, on_drop=drops.append)
        reqs = [InferenceRequest("m", None, None, None) for _ in range(2)]
        for r in reqs:
            q.put(r)
        with pytest.raises(QueueFull):
            q.put(InferenceRequest("m", None, None, None), block=False)
        assert reqs[0].future.cancel()
        assert len(q) == 1  # the slot opened with no pop_batch involved
        late = q.put(InferenceRequest("m", None, None, None), block=False)
        assert late.seq == 2  # the refused put above consumed no seq
        assert sum(drops) == 1
        batch = q.pop_batch(max_batch=8, max_wait=0.0)
        assert [r.seq for r in batch] == [1, 2]
        assert sum(drops) == 1  # the earlier cancel is never re-counted

    def test_closed_queue_refuses_puts_and_drains(self):
        q = RequestQueue(maxsize=4)
        q.put(InferenceRequest("m", None, None, None))
        q.close()
        with pytest.raises(ServerClosed):
            q.put(InferenceRequest("m", None, None, None))
        batch = q.pop_batch(max_batch=4, max_wait=1.0)
        assert len(batch) == 1  # close cuts the wait budget short
        assert q.pop_batch(4, 0.0) is None
        assert q.pop_batch(4, 0.0, only="m") is None

    def test_close_and_drain_returns_pending(self):
        q = RequestQueue(maxsize=4)
        reqs = [
            InferenceRequest(name, None, None, None)
            for name in ["a", "b", "a"]
        ]
        for r in reqs:
            q.put(r)
        assert q.close_and_drain() == reqs  # global admission order
        assert len(q) == 0

    def test_scheduler_validates_policy(self):
        q = RequestQueue()
        with pytest.raises(ValueError):
            MicroBatchScheduler(q, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(q, max_wait_us=-1.0)

    def test_server_validates_workers(self, model):
        with pytest.raises(ValueError):
            InferenceServer({"water": model}, workers=0, autostart=False)
        with pytest.raises(ValueError):
            InferenceServer({"water": model}, workers="three", autostart=False)


class TestWorkerPool:
    """The multi-worker serving pool (one worker per model by default)."""

    def test_per_model_workers_concurrent_two_model_bitwise(
        self, model, model_b, base
    ):
        """Genuinely concurrent 2-model load on a per-model pool: every
        served result is bitwise identical to a direct evaluation, every
        batch of a model ran on that model's own worker, and per-model
        dispatch order is FIFO regardless of worker interleaving."""
        server = InferenceServer(
            {"a": model, "b": model_b}, max_batch=4, max_wait_us=2000
        )
        assert sorted(server.worker_ids()) == ["a", "b"]
        served: dict[tuple, list] = {}

        def run_client(name, mdl, tid):
            client = server.client(name)
            frames = perturbed(base, 4, seed0=1000 * tid)
            served[(name, tid)] = [
                (mdl, f, client.evaluate(f, timeout=WAIT)) for f in frames
            ]

        threads = [
            threading.Thread(target=run_client, args=(name, mdl, tid))
            for tid, (name, mdl) in enumerate(
                [("a", model), ("a", model), ("b", model_b), ("b", model_b)]
            )
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        assert not any(t.is_alive() for t in threads)
        server.stop()
        for results in served.values():
            for mdl, frame, result in results:
                assert_bitwise(result, direct(mdl, frame))
        log = server.stats.batch_log
        # each model's batches executed by its own worker, FIFO per model
        assert log and all(rec.worker == rec.model for rec in log)
        for name in ("a", "b"):
            seqs = [s for rec in log if rec.model == name for s in rec.seqs]
            assert len(seqs) == 8
            assert seqs == sorted(seqs)
        snap = server.stats.snapshot()
        assert snap["requests_completed"] == 16
        assert snap["frames_per_worker"] == {"a": 8, "b": 8}

    def test_per_model_prequeued_coalescing_is_deterministic(
        self, model, model_b, base
    ):
        """Pre-queued interleaved 2-model traffic: each worker coalesces
        its own model's FIFO runs into exactly ceil(8/4) = 2 batches —
        batch contents are deterministic even though the two workers run
        concurrently (only the global log interleaving is free)."""
        frames = perturbed(base, 16)
        server = InferenceServer(
            {"a": model, "b": model_b}, max_batch=4, autostart=False
        )
        futures = [
            server.submit("a" if k % 2 == 0 else "b", f)
            for k, f in enumerate(frames)
        ]
        server.start()
        for f in futures:
            f.result(WAIT)
        server.stop()
        log = server.stats.batch_log
        assert [rec.seqs for rec in log if rec.model == "a"] == [
            (0, 2, 4, 6), (8, 10, 12, 14)
        ]
        assert [rec.seqs for rec in log if rec.model == "b"] == [
            (1, 3, 5, 7), (9, 11, 13, 15)
        ]
        assert all(rec.worker == rec.model for rec in log)
        assert server.stats.snapshot()["batches_per_worker"] == {
            "a": 2, "b": 2
        }

    def test_shared_pool_workers_hold_private_engines(
        self, model, model_b, base
    ):
        """workers=N shared pool: any worker may serve any model, but no
        engine object is ever owned by two workers (scratch pools and plan
        arenas are single-threaded state)."""
        server = InferenceServer(
            {"a": model, "b": model_b}, max_batch=2, max_wait_us=1000,
            workers=2,
        )
        assert server.worker_ids() == ["pool-0", "pool-1"]
        served = []

        def run_client(name, mdl, tid):
            client = server.client(name)
            for f in perturbed(base, 3, seed0=500 * tid):
                served.append((mdl, f, client.evaluate(f, timeout=WAIT)))

        threads = [
            threading.Thread(target=run_client, args=(name, mdl, tid))
            for tid, (name, mdl) in enumerate(
                [("a", model), ("b", model_b), ("a", model)]
            )
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        server.stop()
        for mdl, frame, result in served:
            assert_bitwise(result, direct(mdl, frame))
        engine_owners: dict[int, str] = {}
        for w in server._workers:
            for engine in w.engines.values():
                assert id(engine) not in engine_owners, (
                    f"engine shared by {engine_owners[id(engine)]} and {w.wid}"
                )
                engine_owners[id(engine)] = w.wid
        assert server.stats.snapshot()["requests_completed"] == 9

    def test_per_worker_engines_stop_allocating_steady_state(
        self, model, model_b, base
    ):
        """Zero steady-state arena allocations per worker engine: a second
        identical round of 2-model traffic grows only ``runs``."""
        server = InferenceServer(
            {"a": model, "b": model_b}, max_batch=4, max_wait_us=0.0
        )
        frames = perturbed(base, 8)

        def round_trip():
            with server.paused():
                futs = [
                    server.submit("a" if k % 2 == 0 else "b", f)
                    for k, f in enumerate(frames)
                ]
            for f in futs:
                f.result(WAIT)

        round_trip()  # warm: builds each worker engine's batch-4 arena
        es1 = server.executor_stats()
        round_trip()  # steady state: identical shapes, zero new allocs
        es2 = server.executor_stats()
        server.stop()
        for name in ("a", "b"):
            assert es2[name]["topo_sorts"] == 1
            assert es2[name]["arena_allocs"] == es1[name]["arena_allocs"]
            assert es2[name]["arena_builds"] == es1[name]["arena_builds"]
            assert es2[name]["runs"] == es1[name]["runs"] + 1
        snap = server.stats.snapshot()
        assert snap["frames_per_worker"] == {"a": 8, "b": 8}

    def test_register_on_running_per_model_pool_spawns_worker(
        self, model, model_b, base
    ):
        server = InferenceServer({"a": model}, max_batch=4)
        assert server.worker_ids() == ["a"]
        server.register("b", model_b)
        assert sorted(server.worker_ids()) == ["a", "b"]
        result = server.client("b").evaluate(base, timeout=WAIT)
        server.stop()
        assert_bitwise(result, direct(model_b, base))
        assert server.stats.batch_log[-1].worker == "b"

    def test_register_first_model_on_started_empty_server(self, model, base):
        """A per-model server started with zero models must still spawn a
        worker when its first model arrives (zero live workers does not
        mean "not started")."""
        server = InferenceServer()  # autostart=True, nothing registered yet
        assert server.worker_ids() == []
        server.register("water", model)
        assert server.worker_ids() == ["water"]
        result = server.client("water").evaluate(base, timeout=WAIT)
        server.stop()
        assert_bitwise(result, direct(model, base))

    def test_engine_concurrent_entry_raises(self, model, base):
        """The one-engine-one-thread invariant is guarded, not just
        documented: entering an engine that another thread is inside
        raises instead of corrupting scratch state."""
        from repro.dp.batch import BatchedEvaluator
        from repro.md.neighbor import neighbor_pairs as pairs

        engine = BatchedEvaluator(model)
        engine._active_thread = -1  # simulate another thread mid-evaluation
        with pytest.raises(RuntimeError, match="concurrently"):
            engine.evaluate_batch([base], [pairs(base, model.config.rcut)])
        engine._active_thread = None
        results = engine.evaluate_batch(
            [base], [pairs(base, model.config.rcut)]
        )
        assert_bitwise(results[0], direct(model, base))


class TestDeadlinesAndMetadata:
    """The serving-layer race & deadline fixes (PR 4 satellites)."""

    def test_metadata_attached_before_enqueue(self, model, base, monkeypatch):
        """``future.request`` must exist before the request becomes visible
        to any worker — a done-callback firing the instant the put returns
        already sees the metadata."""
        server = InferenceServer({"water": model}, autostart=False)
        attached_at_put = []
        orig_put = server.queue.put

        def spy_put(request, **kwargs):
            attached_at_put.append(
                getattr(request.future, "request", None) is request
            )
            return orig_put(request, **kwargs)

        monkeypatch.setattr(server.queue, "put", spy_put)
        fut = server.submit("water", base)
        assert attached_at_put == [True]
        assert fut.request.model == "water"
        server.stop(drain=False)

    def test_timeout_cancels_queued_request_counted_once(self, model, base):
        """A client that abandons its deadline cancels the queued request,
        which leaves the queue immediately — counted in requests_cancelled
        exactly once, never in requests_completed, and it burns no batch
        slot."""
        server = InferenceServer({"water": model}, max_batch=4, max_wait_us=0)
        server.pause()  # worker parked: the request will sit queued
        client = server.client("water")
        abandoned = perturbed(base, 1)[0]
        with pytest.raises(FutureTimeout):
            client.evaluate(abandoned, timeout=0.05)
        # the cancel freed the queue slot and counted, with no worker help
        snap = server.stats.snapshot()
        assert snap["requests_cancelled"] == 1
        assert len(server.queue) == 0
        live = client.submit(perturbed(base, 1, seed0=9)[0])
        server.resume()
        live.result(WAIT)
        server.stop()
        snap = server.stats.snapshot()
        assert snap["requests_cancelled"] == 1  # exactly once
        assert snap["requests_completed"] == 1
        assert snap["frames"] == 1  # the dropped request used no batch slot
        assert server.stats.pending() == 0
        # the executed batch contains only the live request's seq
        assert [rec.seqs for rec in server.stats.batch_log] == [(1,)]

    def test_timeout_cancel_then_no_drain_stop_counted_once(self, model, base):
        """The drain path must not double-count a request the client
        already cancelled."""
        server = InferenceServer({"water": model}, max_batch=4)
        server.pause()
        client = server.client("water")
        with pytest.raises(FutureTimeout):
            client.evaluate(base, timeout=0.05)
        server.stop(drain=False)
        snap = server.stats.snapshot()
        assert snap["requests_cancelled"] == 1
        assert snap["requests_completed"] == 0
        assert server.stats.pending() == 0

    def test_evaluate_many_cancels_pending_on_timeout(self, model, base):
        server = InferenceServer({"water": model}, max_batch=4)
        server.pause()
        client = server.client("water")
        frames = perturbed(base, 3, seed0=77)
        with pytest.raises(FutureTimeout):
            client.evaluate_many(frames, timeout=0.05)
        server.resume()  # workers drop the whole abandoned stack
        server.stop()
        snap = server.stats.snapshot()
        assert snap["requests_cancelled"] == 3
        assert snap["requests_completed"] == 0
        assert snap["frames"] == 0  # no batch ever executed
        assert server.stats.pending() == 0

    def test_evaluate_many_cancels_stack_on_midstream_backpressure(
        self, model, base
    ):
        """A mid-stack QueueFull abandons the whole stack: the frames that
        DID get queued are cancelled, freeing their queue slots, instead of
        holding the bounded queue full for results nobody will read."""
        server = InferenceServer({"water": model}, max_batch=4, max_queue=2)
        server.pause()
        client = server.client("water")
        frames = perturbed(base, 4, seed0=31)
        with pytest.raises(QueueFull):
            client.evaluate_many(frames, timeout=0.05)
        server.resume()  # workers drop the two queued, now-cancelled frames
        server.stop()
        snap = server.stats.snapshot()
        assert snap["requests_cancelled"] == 2
        assert snap["requests_completed"] == 0
        assert snap["requests_rejected"] == 1
        assert snap["frames"] == 0
        assert server.stats.pending() == 0

    def test_hung_clients_fail_the_join_deadline(self, model, base):
        """A stalled server must fail run_closed_loop_clients at its join
        deadline with per-client progress, not hang forever."""
        from repro.serving import run_closed_loop_clients

        server = InferenceServer({"water": model})
        server.pause()  # nothing will ever be served
        frame_sets = {
            0: perturbed(base, 2, seed0=1),
            1: perturbed(base, 2, seed0=5),
        }
        with pytest.raises(RuntimeError, match=r"0/2 frames done"):
            run_closed_loop_clients(
                server, "water", frame_sets, timeout=WAIT, join_timeout=0.3
            )
        # unwind: cancel pending so the daemonic client threads exit
        server.stop(drain=False)


class TestResultCache:
    """The frame-content result cache: hits are bitwise replays, invalidate
    forces recomputation, capacity evicts FIFO, and concurrent clients can
    never corrupt each other's results through the cache."""

    def test_hit_on_repeated_frame_is_bitwise(self, model, base):
        server = InferenceServer({"water": model}, cache_size=8)
        client = server.client("water")
        first = client.evaluate(base, timeout=WAIT)
        second = client.evaluate(base, timeout=WAIT)
        server.stop()
        assert_bitwise(first, direct(model, base))
        assert_bitwise(second, first)
        snap = server.stats.snapshot()
        assert snap["cache_hits"] == 1
        assert snap["cache_misses"] == 1
        # the hit completed without entering the queue: one batch total,
        # but conservation still holds
        assert snap["batches"] == 1
        assert snap["requests_completed"] == 2
        assert snap["requests_submitted"] == 2

    def test_miss_after_invalidate(self, model, base):
        server = InferenceServer({"water": model}, cache_size=8)
        client = server.client("water")
        warm = client.evaluate(base, timeout=WAIT)
        assert server.invalidate_cache("water") == 1
        cold = client.evaluate(base, timeout=WAIT)  # recomputed, not replayed
        server.stop()
        assert_bitwise(cold, warm)
        snap = server.stats.snapshot()
        assert snap["cache_hits"] == 0
        assert snap["cache_misses"] == 2
        assert snap["batches"] == 2
        # invalidation is not capacity pressure
        assert snap["cache_evictions"] == 0
        assert server.invalidate_cache() == 1  # the recomputed entry

    def test_eviction_at_capacity_is_fifo(self, model, base):
        server = InferenceServer({"water": model}, cache_size=2)
        client = server.client("water")
        frames = perturbed(base, 3, seed0=11)
        for f in frames:
            client.evaluate(f, timeout=WAIT)
        # cache holds frames[1], frames[2]; frames[0] was evicted FIFO
        assert len(server.cache) == 2
        assert server.stats.snapshot()["cache_evictions"] == 1
        client.evaluate(frames[1], timeout=WAIT)  # hit: still resident
        client.evaluate(frames[0], timeout=WAIT)  # miss: was evicted
        server.stop()
        snap = server.stats.snapshot()
        assert snap["cache_hits"] == 1
        assert snap["cache_misses"] == 4
        assert snap["cache_evictions"] == 2  # frames[0]'s re-insert evicted

    def test_disabled_cache_is_invisible(self, model, base):
        server = InferenceServer({"water": model})  # cache_size=0
        client = server.client("water")
        client.evaluate(base, timeout=WAIT)
        client.evaluate(base, timeout=WAIT)
        server.stop()
        snap = server.stats.snapshot()
        assert snap["cache_hits"] == 0
        assert snap["cache_misses"] == 0
        assert snap["batches"] == 2

    def test_concurrent_two_client_load_bitwise(self, model, base):
        """Two closed-loop clients hammer an overlapping frame set; every
        result is bitwise identical to a direct evaluation even though many
        are cache replays, and mutating a returned array cannot poison the
        cache for the other client."""
        frames = perturbed(base, 4, seed0=23)
        refs = [direct(model, f) for f in frames]
        server = InferenceServer(
            {"water": model}, max_batch=4, max_wait_us=2000, cache_size=16
        )
        done: dict[int, int] = {0: 0, 1: 0}
        errors: list[BaseException] = []

        def run(tid: int):
            client = server.client("water")
            try:
                for _ in range(3):  # 3 passes over the shared frames
                    for k, f in enumerate(frames):
                        r = client.evaluate(f, timeout=WAIT)
                        assert_bitwise(r, refs[k])
                        done[tid] += 1
                        # adversarial aliasing: scribble on the returned
                        # arrays; the cache must hand out private copies,
                        # so the other client's replays stay pristine
                        r.forces += 1e30
                        r.virial += 1e30
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(t,)) for t in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        server.stop()
        assert not errors, errors
        assert done == {0: 12, 1: 12}
        snap = server.stats.snapshot()
        # 12 requests/client; at most 4 distinct frames ever need computing,
        # and each miss can be charged at most once per client (a frame is
        # only recomputed if both clients missed it before either insert)
        assert snap["cache_hits"] >= 24 - 2 * 4
        assert snap["cache_hits"] + snap["cache_misses"] == 24
        assert snap["requests_completed"] == 24


class TestPriorityStarvation:
    """Priority + EDF dispatch under sustained mixed-priority load.

    The hazard: with ``order_key() = (-priority, deadline, seq)``, a steady
    stream of priority-1 traffic could in principle starve the priority-0
    class forever.  The determinism device is the paused-preload round: each
    round stages its full mixed schedule before the workers run, so the
    dispatch order recorded in ``batch_log`` is an exact function of the
    order keys — no wall-clock races.  Across rounds the load is sustained
    (new high-priority work keeps arriving), yet every round's priority-0
    requests complete before the next round begins, and their displacement
    behind their FIFO position is bounded by the number of co-pending
    high-priority requests.  That bound *is* the no-starvation statement.
    """

    ROUNDS = 4
    N_LO = 4  # priority 0, no deadline (the background class)
    N_HI = 2  # priority 1, deadlines reversed vs submission order

    def test_sustained_mixed_load_edf_and_bounded_displacement(
        self, model, base
    ):
        server = InferenceServer({"water": model}, max_batch=2, max_wait_us=0)
        completed = 0
        for r in range(self.ROUNDS):
            frames = perturbed(base, self.N_LO + self.N_HI, seed0=3000 + 10 * r)
            log_before = len(server.stats.batch_log)
            with server.paused():
                pending = []  # (frame, future) in submission order
                for k in range(self.N_LO):
                    fut = server.submit("water", frames[k], priority=0)
                    pending.append((frames[k], fut))
                # Reversed deadlines within the high class: the *later*
                # submission carries the *earlier* deadline, so plain
                # priority-then-FIFO would dispatch them in the wrong
                # order — only EDF produces the expected log.
                fut_late = server.submit(
                    "water", frames[self.N_LO], priority=1, deadline=90.0
                )
                fut_soon = server.submit(
                    "water", frames[self.N_LO + 1], priority=1, deadline=60.0
                )
                pending.append((frames[self.N_LO], fut_late))
                pending.append((frames[self.N_LO + 1], fut_soon))
            # no starvation: the whole round drains, priority 0 included,
            # before the next round's high-priority wave arrives — and
            # every result is bitwise its own frame's evaluation
            for f, fut in pending:
                assert_bitwise(fut.result(WAIT), direct(model, f))
            completed += len(pending)

            seqs = [fut.request.seq for _, fut in pending]
            lo_seqs, hi_seqs = seqs[: self.N_LO], seqs[self.N_LO:]
            batches = server.stats.batch_log[log_before:]
            assert all(b.model == "water" for b in batches)
            dispatched = [s for b in batches for s in b.seqs]
            # EDF within the high class (soon before late despite later
            # submission), then the background class in FIFO seq order
            assert dispatched == [hi_seqs[1], hi_seqs[0]] + lo_seqs
            # batch composition: the high class fills the first batch
            # alone; priority 0 coalesces in submission order behind it
            assert [list(b.seqs) for b in batches] == [
                [hi_seqs[1], hi_seqs[0]],
                lo_seqs[:2],
                lo_seqs[2:],
            ]
            # bounded displacement: a priority-0 request is pushed back at
            # most N_HI slots from its FIFO position — never unboundedly
            for fifo_pos, s in enumerate(lo_seqs):
                assert dispatched.index(s) - fifo_pos <= self.N_HI

        server.stop()
        snap = server.stats.snapshot()
        assert snap["requests_completed"] == completed
        assert snap["requests_submitted"] == completed
        assert snap["requests_failed"] == snap["requests_cancelled"] == 0


class TestCacheUnderCrash:
    """ResultCache x WorkerCrashed: a crash poisons exactly the crashed
    model's cached entries.  Anything the dead engine produced may not be
    replayed (its mid-batch state is suspect), so those entries drop and
    recompute; every *other* model's entries keep serving hits — including
    during the window where the crashed worker is down."""

    def _wait_respawn(self, server, n=1):
        """The crash cleanup runs on the dying worker thread *after* it
        fails the futures; poll (bounded) until invalidation + respawn have
        been recorded before touching the cache again."""
        deadline = time.perf_counter() + WAIT
        while server.stats.snapshot()["worker_respawns"] < n:
            assert time.perf_counter() < deadline, "respawn never recorded"
            time.sleep(0.005)

    def test_crash_invalidates_only_the_crashed_models_entries(
        self, model, model_b, base
    ):
        plan = FaultPlan([CrashWorker(worker="a", at_batch=2)])
        server = InferenceServer(
            {"a": model, "b": model_b}, cache_size=8, faults=plan
        )
        fa, fb, fa2 = perturbed(base, 3, seed0=41)
        # prime both caches (two misses), then replay both (two hits)
        ra = server.submit("a", fa).result(WAIT)
        rb = server.submit("b", fb).result(WAIT)
        assert_bitwise(server.submit("a", fa).result(WAIT), ra)
        assert_bitwise(server.submit("b", fb).result(WAIT), rb)
        # a fresh frame for model a: misses the cache, reaches worker "a"
        # as its 2nd batch, and dies there
        with pytest.raises(WorkerCrashed):
            server.submit("a", fa2).result(WAIT)
        self._wait_respawn(server)
        snap = server.stats.snapshot()
        assert snap["worker_crashes"] == 1
        assert snap["worker_respawns"] == 1
        assert snap["cache_invalidations"] == 1  # a's entry, not b's
        assert plan.fired(CrashWorker) == 1
        # model a's entry is gone: the same frame recomputes (a miss) on
        # the respawned worker's fresh engine, bitwise equal to before
        assert_bitwise(server.submit("a", fa).result(WAIT), ra)
        # model b's entry survived the crash: still a replay, no new batch
        assert_bitwise(server.submit("b", fb).result(WAIT), rb)
        server.stop()
        snap = server.stats.snapshot()
        assert snap["cache_hits"] == 3  # a-replay, b-replay, b-after-crash
        assert snap["cache_misses"] == 4  # a, b, crashed fa2, a-recompute
        assert snap["requests_submitted"] == 7
        assert snap["requests_completed"] == 6
        assert snap["requests_failed"] == 1
        assert snap["requests_cancelled"] == 0

    def test_cache_hits_serve_while_another_worker_is_down(
        self, model, model_b, base
    ):
        """Replays never touch the queue, so model b's cached frame keeps
        serving even while model a's only worker slot is dead *for good*
        (``max_respawns=0`` — the crash-loop stop, not a transient gap)."""
        plan = FaultPlan([CrashWorker(worker="a", at_batch=1)])
        server = InferenceServer(
            {"a": model, "b": model_b},
            cache_size=8,
            faults=plan,
            max_respawns=0,
        )
        fa, fb = perturbed(base, 2, seed0=53)
        warm_b = server.submit("b", fb).result(WAIT)
        with pytest.raises(WorkerCrashed):
            server.submit("a", fa).result(WAIT)
        # a's slot is permanently down (and a had nothing cached, so the
        # crash dropped zero entries); b's replay path is queue-free and
        # keeps answering bitwise
        for _ in range(3):
            assert_bitwise(server.submit("b", fb).result(WAIT), warm_b)
        snap = server.stats.snapshot()
        assert snap["worker_crashes"] == 1
        assert snap["worker_respawns"] == 0
        assert snap["cache_invalidations"] == 0
        assert snap["cache_hits"] == 3
        server.stop(drain=False)

    def test_crash_with_cache_disabled_counts_no_invalidations(
        self, model, base
    ):
        plan = FaultPlan([CrashWorker(worker="water", at_batch=1)])
        server = InferenceServer({"water": model}, faults=plan)  # cache off
        with pytest.raises(WorkerCrashed):
            server.submit("water", base).result(WAIT)
        self._wait_respawn(server)
        # respawned slot serves normally; no cache, so nothing to drop
        served = server.submit("water", base).result(WAIT)
        server.stop()
        assert_bitwise(served, direct(model, base))
        snap = server.stats.snapshot()
        assert snap["cache_invalidations"] == 0
        assert snap["worker_crashes"] == 1
        assert snap["worker_respawns"] == 1
