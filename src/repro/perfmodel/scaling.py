"""Scaling sweeps: the generators behind Table 1, Table 4, Fig 5 and Fig 6.

Every row the paper's evaluation reports for Summit-scale runs is produced
here from the cost model.  The benchmark harness prints these next to the
paper's measured values (EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.perfmodel.costmodel import (
    COPPER_SPEC,
    WATER_SPEC,
    SystemSpec,
    step_time,
)
from repro.perfmodel.machine import SUMMIT, SummitMachine


@dataclass
class ScalingPoint:
    """One point of a scaling curve."""

    n_nodes: int
    n_gpus: int
    n_atoms: int
    precision: str
    atoms_per_gpu: float
    ghosts_per_gpu: float
    t_step: float  # seconds per MD step
    loop_time_500: float  # the paper's "MD loop time" for 500 steps
    pflops: float
    percent_of_peak: float  # of the fp64 node peak, as the paper reports
    time_to_solution: float  # s/step/atom
    efficiency: float = 1.0  # parallel efficiency vs the first point

    def ns_per_day(self, timestep_fs: float) -> float:
        """Simulated nanoseconds per wall-clock day."""
        steps_per_day = 86400.0 / self.t_step
        return steps_per_day * timestep_fs * 1e-6


def _point(
    n_atoms: int,
    n_nodes: int,
    spec: SystemSpec,
    precision: str,
    machine: SummitMachine,
) -> ScalingPoint:
    n_gpus = n_nodes * machine.gpus_per_node
    parts = step_time(n_atoms, n_gpus, spec, precision, machine)
    t = parts["t_step"]
    total_flops = spec.flops_per_atom_step * n_atoms
    pflops = total_flops / t / 1e15
    return ScalingPoint(
        n_nodes=n_nodes,
        n_gpus=n_gpus,
        n_atoms=n_atoms,
        precision=precision,
        atoms_per_gpu=parts["atoms_per_gpu"],
        ghosts_per_gpu=parts["ghosts_per_gpu"],
        t_step=t,
        loop_time_500=500.0 * t,
        pflops=pflops,
        percent_of_peak=100.0 * total_flops / t / machine.peak_fp64(n_nodes),
        time_to_solution=t / n_atoms,
    )


def strong_scaling(
    spec: SystemSpec,
    n_atoms: int,
    node_counts: Sequence[int],
    precision: str = "double",
    machine: SummitMachine = SUMMIT,
) -> list[ScalingPoint]:
    """Fixed problem size over increasing node counts (Fig 5)."""
    points = [_point(n_atoms, n, spec, precision, machine) for n in node_counts]
    base = points[0]
    for p in points:
        p.efficiency = (base.t_step * base.n_nodes) / (p.t_step * p.n_nodes)
    return points


def weak_scaling(
    spec: SystemSpec,
    atoms_per_node: float,
    node_counts: Sequence[int],
    precision: str = "double",
    machine: SummitMachine = SUMMIT,
) -> list[ScalingPoint]:
    """Fixed atoms/node over increasing node counts (Fig 6)."""
    points = []
    for n in node_counts:
        n_atoms = int(round(atoms_per_node * n))
        points.append(_point(n_atoms, n, spec, precision, machine))
    base = points[0]
    for p in points:
        p.efficiency = p.pflops / (base.pflops * p.n_nodes / base.n_nodes)
    return points


# --------------------------------------------------------------------------
# Table 4: water strong scaling, 12,582,912 atoms, 480..27360 GPUs
# --------------------------------------------------------------------------

TABLE4_GPU_COUNTS = (480, 960, 1920, 3840, 7680, 15360, 27360)
TABLE4_PAPER = {
    # gpus: (atoms/GPU, ghosts/GPU, MD loop time (s), efficiency, PFLOPS, %peak)
    480: (26214, 25566, 92.31, 1.00, 1.35, 38.54),
    960: (13107, 16728, 47.11, 0.98, 2.65, 37.76),
    1920: (6553, 11548, 25.08, 0.92, 4.98, 35.46),
    3840: (3276, 7962, 13.62, 0.85, 9.16, 32.64),
    7680: (1638, 5467, 7.98, 0.72, 15.63, 27.85),
    15360: (819, 3995, 5.76, 0.50, 21.66, 19.30),
    27360: (459, 3039, 4.53, 0.36, 27.51, 13.75),
}


def table4_rows(machine: SummitMachine = SUMMIT) -> list[dict]:
    """Model predictions for each Table 4 column, with paper values attached."""
    n_atoms = 12_582_912
    rows = []
    base_t = None
    for gpus in TABLE4_GPU_COUNTS:
        parts = step_time(n_atoms, gpus, WATER_SPEC, "double", machine)
        loop = 500.0 * parts["t_step"]
        if base_t is None:
            base_t = parts["t_step"] * gpus
        total_flops = WATER_SPEC.flops_per_atom_step * n_atoms
        pflops = total_flops / parts["t_step"] / 1e15
        peak = machine.gpu_fp64_flops * gpus  # paper's %peak is GPU-based here
        rows.append(
            {
                "gpus": gpus,
                "atoms_per_gpu": parts["atoms_per_gpu"],
                "ghosts_per_gpu": parts["ghosts_per_gpu"],
                "md_loop_time": loop,
                "efficiency": base_t / (parts["t_step"] * gpus),
                "pflops": pflops,
                "percent_peak": 100.0 * total_flops / parts["t_step"] / peak,
                "paper": TABLE4_PAPER[gpus],
            }
        )
    return rows


# --------------------------------------------------------------------------
# Table 1: time-to-solution survey
# --------------------------------------------------------------------------

TABLE1_LITERATURE = [
    # work, year, potential, system, #atoms, machine, TtS (s/step/atom)
    ("Qbox [26]", 2006, "DFT", "Mo", 1_000, "BlueGene/L", 2.8e-1),
    ("LS3DF [62]", 2008, "LS-DFT", "ZnTeO", 16_000, "BlueGene/P", 1.8e-2),
    ("RSDFT [28]", 2011, "DFT", "Si", 107_000, "K-computer", 2.6e0),
    ("DFT-FE [21]", 2019, "DFT", "Mg", 11_000, "Summit", 6.5e-2),
    ("CONQUEST [44]", 2020, "LS-DFT", "Si", 1_000_000, "K-computer", 4.0e-3),
    ("Simple-NN [35]", 2019, "BP", "SiO2", 14_000, "VSC", 3.6e-5),
    ("Singraber et al. [53]", 2019, "BP", "H2O", 9_000, "KISTI", 1.3e-6),
    ("Baseline DeePMD-kit [60]", 2018, "DP", "H2O", 25_000, "Summit (1 GPU)", 5.6e-5),
]

TABLE1_PAPER_THIS_WORK = [
    ("This work (model)", 2020, "DP", "H2O", 402_653_184, "Summit", 2.7e-10),
    ("This work (model)", 2020, "DP", "Cu", 113_246_208, "Summit", 7.3e-10),
]


def table1_rows(machine: SummitMachine = SUMMIT) -> list[dict]:
    """Model-predicted TtS for the paper's two headline systems."""
    rows = []
    for name, year, pot, system, n_atoms, where, paper_tts in TABLE1_PAPER_THIS_WORK:
        spec = WATER_SPEC if system == "H2O" else COPPER_SPEC
        parts = step_time(n_atoms, 4560 * machine.gpus_per_node, spec, "double", machine)
        rows.append(
            {
                "work": name,
                "system": system,
                "n_atoms": n_atoms,
                "machine": where,
                "tts_model": parts["t_step"] / n_atoms,
                "tts_paper": paper_tts,
            }
        )
    return rows


# --------------------------------------------------------------------------
# Fig 5 / Fig 6 reference values for comparison printing
# --------------------------------------------------------------------------

FIG5_WATER_NODES = (80, 160, 320, 640, 1280, 2560, 4560)
FIG5_COPPER_NODES = (570, 1140, 2280, 4560)
FIG5_PAPER_WATER_DOUBLE = {  # node -> (PFLOPS, TtS ms)
    80: (1.4, 185), 160: (2.6, 94), 320: (5.0, 50), 640: (8.8, 28),
    1280: (15.6, 16), 2560: (21.6, 12), 4560: (27.5, 9),
}
FIG5_PAPER_COPPER_DOUBLE = {
    570: (11.7, 142), 1140: (22.7, 74), 2280: (42.2, 40), 4560: (76.4, 22),
}
FIG6_WATER_NODES = (285, 570, 1140, 2280, 4560)
FIG6_PAPER_WATER_DOUBLE = {285: 4.7, 570: 9.4, 1140: 18.7, 2280: 36.8, 4560: 72.6}
FIG6_PAPER_COPPER_DOUBLE = {285: 5.5, 570: 10.9, 1140: 21.6, 2280: 43.3, 4560: 86.2}

WATER_STRONG_ATOMS = 12_582_912
COPPER_STRONG_ATOMS = 25_739_424
WATER_WEAK_ATOMS_PER_NODE = 402_653_184 / 4560
COPPER_WEAK_ATOMS_PER_NODE = 113_246_208 / 4560


# --------------------------------------------------------------------------
# Sec 8.2: the exascale outlook — "no intrinsic obstacles to scaling our
# code ... for systems with billions of atoms"
# --------------------------------------------------------------------------


def latency_sensitivity(
    spec: SystemSpec = WATER_SPEC,
    n_atoms: int = WATER_STRONG_ATOMS,
    n_nodes: int = 4560,
    latency_factors: Sequence[float] = (1.0, 0.5, 0.25, 0.1),
    machine: SummitMachine = SUMMIT,
) -> list[dict]:
    """Sec 8.2's hardware ask, quantified: how much strong-scaling headroom
    does reducing the per-step latency floor (GPU launch + network latency)
    unlock at the most latency-bound point of Fig 5?

    Returns one row per hypothetical latency reduction factor.
    """
    from dataclasses import replace as dc_replace

    rows = []
    for f in latency_factors:
        m = dc_replace(
            machine,
            fixed_step_seconds=machine.fixed_step_seconds * f,
            mpi_latency=machine.mpi_latency * f,
        )
        pt = _point(n_atoms, n_nodes, spec, "double", m)
        rows.append(
            {
                "latency_factor": f,
                "t_step": pt.t_step,
                "pflops": pt.pflops,
                "percent_peak": pt.percent_of_peak,
            }
        )
    return rows


def exascale_projection(
    spec: SystemSpec = COPPER_SPEC,
    atoms_per_node: Optional[float] = None,
    max_nodes: int = 80_000,
    precision: str = "mixed",
    machine: SummitMachine = SUMMIT,
) -> list[ScalingPoint]:
    """Weak-scale the cost model past Summit toward an exascale machine.

    Keeps Summit's per-node characteristics (the conservative case the paper
    argues from: its Fig 6 linearity implies no intrinsic obstacle) and
    extends the node count until the system passes 1 billion atoms.
    """
    if atoms_per_node is None:
        atoms_per_node = COPPER_WEAK_ATOMS_PER_NODE
    nodes = []
    n = 4560
    while n <= max_nodes:
        nodes.append(n)
        n *= 2
    return weak_scaling(spec, atoms_per_node, nodes, precision, machine)
