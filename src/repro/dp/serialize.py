"""Model persistence: DPConfig + statistics + weights in a single .npz.

The optimized setup path of Sec 7.3 reads the model file once and broadcasts
it; :func:`model_bytes`/:func:`model_from_bytes` expose the serialized blob
for :mod:`repro.parallel.staging`.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict

import numpy as np

from repro.dp.model import DeepPot, DPConfig


def _pack(model: DeepPot) -> dict:
    arrays = {
        "davg": model.davg,
        "dstd": model.dstd,
        "e0": model.e0,
    }
    for kind, plist in (
        ("embed", model.embedding_params),
        ("fit", model.fitting_params),
    ):
        for t, params in enumerate(plist):
            for k, (w, b) in enumerate(zip(params.weights, params.biases)):
                arrays[f"{kind}_{t}_{k}_W"] = w.value
                arrays[f"{kind}_{t}_{k}_b"] = b.value
    cfg = asdict(model.config)
    arrays["config_json"] = np.frombuffer(
        json.dumps(cfg).encode("utf-8"), dtype=np.uint8
    )
    return arrays


def _unpack(arrays) -> DeepPot:
    cfg_dict = json.loads(bytes(arrays["config_json"]).decode("utf-8"))
    for key in ("type_names", "sel", "embedding_layers", "fitting_layers"):
        cfg_dict[key] = tuple(cfg_dict[key])
    config = DPConfig(**cfg_dict)
    model = DeepPot(config)
    model.set_stats(arrays["davg"], arrays["dstd"], arrays["e0"])
    for kind, plist in (
        ("embed", model.embedding_params),
        ("fit", model.fitting_params),
    ):
        for t, params in enumerate(plist):
            for k, (w, b) in enumerate(zip(params.weights, params.biases)):
                w.assign(arrays[f"{kind}_{t}_{k}_W"])
                b.assign(arrays[f"{kind}_{t}_{k}_b"])
    return model


def save_model(model: DeepPot, path: str) -> None:
    """Write the model to ``path`` (.npz)."""
    np.savez_compressed(path, **_pack(model))


def load_model(path: str) -> DeepPot:
    """Reconstruct a model saved with :func:`save_model`."""
    with np.load(path) as data:
        return _unpack(dict(data))


def model_bytes(model: DeepPot) -> bytes:
    """Serialize to an in-memory blob (for simulated-MPI broadcast)."""
    buf = io.BytesIO()
    np.savez_compressed(buf, **_pack(model))
    return buf.getvalue()


def model_from_bytes(blob: bytes) -> DeepPot:
    """Inverse of :func:`model_bytes`."""
    with np.load(io.BytesIO(blob)) as data:
        return _unpack(dict(data))
