"""Sec 5.2.3 / 7.1.3 — mixed-precision accuracy, speed, and memory.

Paper (4,096-molecule water): energy deviation 0.32 meV/molecule, force RMSD
0.029 eV/Å (both below the training error), ~1.5x faster, ~50% less memory.

Here the trained zoo model is cloned into the fp32 engine (identical
parameters) and compared on energies, forces, parameter memory, and
evaluation wall time.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    bench_median,
    bench_paired_trials,
    bench_strict,
    print_header,
)
from repro.md.neighbor import neighbor_pairs
from repro.zoo import as_mixed_precision

RESULTS = {}


@pytest.fixture(scope="module")
def pair_of_models(zoo_water_model):
    return zoo_water_model, as_mixed_precision(zoo_water_model)


def test_double_eval(benchmark, pair_of_models, water_192):
    double, _ = pair_of_models
    pi, pj = neighbor_pairs(water_192, double.config.rcut)
    RESULTS["t_double"] = bench_median(
        benchmark, lambda: double.evaluate(water_192, pi, pj), rounds=5
    )


def test_mixed_eval(benchmark, pair_of_models, water_192):
    _, mixed = pair_of_models
    pi, pj = neighbor_pairs(water_192, mixed.config.rcut)
    RESULTS["t_mixed"] = bench_median(
        benchmark, lambda: mixed.evaluate(water_192, pi, pj), rounds=5
    )


def test_zz_accuracy_and_report(benchmark, pair_of_models, water_192):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    double, mixed = pair_of_models
    pi, pj = neighbor_pairs(water_192, double.config.rcut)
    rd = double.evaluate(water_192, pi, pj)
    rm = mixed.evaluate(water_192, pi, pj)

    n_mol = water_192.n_atoms // 3
    de_mev = abs(rd.energy - rm.energy) / n_mol * 1e3
    f_rmsd = float(np.sqrt(np.mean((rd.forces - rm.forces) ** 2)))
    mem_ratio = mixed.param_nbytes() / double.param_nbytes()
    speed = RESULTS["t_double"] / RESULTS["t_mixed"]

    print_header("Sec 7.1.3 — mixed vs double precision (this repo | paper)")
    print(f"energy deviation: {de_mev:.2e} meV/molecule | 0.32 (production model)")
    print(f"force RMSD:       {f_rmsd:.2e} eV/Å        | 0.029")
    print(f"parameter memory: {mem_ratio:.2f}x              | ~0.5x")
    print(f"speed:            {speed:.2f}x faster       | ~1.5x")

    # Shape assertions.
    assert de_mev < 0.32  # deviations below the paper's production numbers
    assert f_rmsd < 0.029
    assert mem_ratio == pytest.approx(0.5, abs=0.01)
    # Wall-clock assert on PAIRED interleaved trials (the two engines run
    # back-to-back inside every trial, so host-load drift hits both sides
    # equally) — the separately-timed t_double/t_mixed above are report-only:
    # on this noisy host their ratio swings 1.0-1.5x between runs.
    # REPRO_BENCH_STRICT=0 makes the assert report-only.
    if bench_strict():
        ratios = bench_paired_trials(
            lambda: double.evaluate(water_192, pi, pj),
            lambda: mixed.evaluate(water_192, pi, pj),
            trials=7,
        )
        speed_paired = float(np.median(ratios))
        print(f"speed (paired):   {speed_paired:.2f}x faster       | ~1.5x")
        # fp32 must actually pay off.  Margin note: the compiled-plan
        # executor eliminated per-op output allocation, which used to pad
        # fp64's cost more than fp32's (twice the bytes to allocate+zero),
        # so the measured advantage narrowed from ~1.25x to ~1.15x — all
        # BLAS/ufunc now, no allocator component.
        assert speed_paired > 1.05
    # Physics unchanged: virials agree too.
    np.testing.assert_allclose(rm.virial, rd.virial, atol=5e-3)
