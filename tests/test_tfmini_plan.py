"""Compiled execution plans vs the ``Session.run`` oracle.

The contract under test (see :mod:`repro.tfmini.plan`):

* plan results are **bitwise identical** to ``Session.run`` — across the
  model zoo (water/copper x double/single network precision), fused and
  unfused graphs, R>1 batched evaluation, and a full Adam training step;
* the fixed costs are really gone — one ``topo_sort`` per compiled plan,
  zero arena allocations once a feed-shape signature is warm;
* a feed shape change re-plans automatically, and previously seen shapes
  keep their warm arenas;
* profiling through a plan produces the same ``OpStats`` call/FLOP/byte
  counters as the instrumented ``Session.run`` (Fig-3 parity).
"""

import numpy as np
import pytest

import repro.tfmini as tf
from repro.tfmini import graph
from repro.tfmini.ops import register_op
from repro.analysis.structures import fcc_lattice, water_box
from repro.dp.batch import BatchedEvaluator
from repro.dp.model import DeepPot, DPConfig
from repro.dp.train import TrainConfig, Trainer
from repro.md.neighbor import neighbor_pairs


def assert_results_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert np.array_equal(np.asarray(x), np.asarray(y))


# ---------------------------------------------------------------------------
# synthetic graphs: fused vs unfused, replan, liveness, fallback
# ---------------------------------------------------------------------------


def _mlp_fetches(optimize: bool):
    """A matmul+bias+tanh block with gradients — hits the fusion passes."""
    rng = np.random.default_rng(7)
    x = tf.placeholder("x")
    w1 = tf.variable(rng.normal(size=(6, 8)), name="w1")
    b1 = tf.variable(rng.normal(size=(8,)), name="b1")
    w2 = tf.variable(rng.normal(size=(8, 1)), name="w2")
    h = tf.tanh(tf.add(tf.matmul(x, w1), b1))
    h = tf.concat(h, h, axis=-1)  # skip connection shape -> concat_sum pass
    hh = tf.add(h, tf.concat(tf.tanh(b1), tf.tanh(b1), axis=-1))
    y = tf.reduce_sum(tf.matmul(tf.slice_cols(hh, 0, 8), w2))
    grads = tf.grad(y, [w1, b1, w2])
    fetches = [y] + grads
    if optimize:
        fetches = tf.optimize_graph(fetches)
    return fetches, x


class TestSyntheticGraphs:
    @pytest.mark.parametrize("optimize", [False, True])
    def test_bitwise_vs_session_fused_and_unfused(self, optimize):
        fetches, x = _mlp_fetches(optimize)
        feeds = {x: np.random.default_rng(3).normal(size=(10, 6))}
        sess = tf.Session()
        plan = tf.compile_plan(fetches, [x])
        assert_results_equal(sess.run(fetches, feeds), plan.run(feeds))
        # steady-state run (arena-backed) must match too
        assert_results_equal(sess.run(fetches, feeds), plan.run(feeds))

    def test_fused_graph_executes_tanh_fused_records(self):
        fetches, x = _mlp_fetches(True)
        ops = {n.op for n in graph.topo_sort(fetches)}
        assert "tanh_fused" in ops and "gemm" in ops  # passes actually fired

    def test_one_topo_sort_per_plan(self):
        fetches, x = _mlp_fetches(True)
        feeds = {x: np.random.default_rng(0).normal(size=(4, 6))}
        before = graph.TOPO_SORT_CALLS
        plan = tf.compile_plan(fetches, [x])
        assert graph.TOPO_SORT_CALLS == before + 1
        for _ in range(5):
            plan.run(feeds)
        assert graph.TOPO_SORT_CALLS == before + 1
        assert plan.stats.topo_sorts == 1

    def test_zero_arena_allocations_after_warmup(self):
        fetches, x = _mlp_fetches(True)
        feeds = {x: np.random.default_rng(0).normal(size=(4, 6))}
        plan = tf.compile_plan(fetches, [x])
        plan.run(feeds)  # warm
        allocs = plan.alloc_count()
        assert allocs > 0
        for _ in range(10):
            plan.run(feeds)
        assert plan.alloc_count() == allocs

    def test_liveness_recycles_dead_slots(self):
        # A long chain of same-shape elementwise ops: with recycling the
        # arena needs far fewer buffers than the tape has records.  Pinned
        # to the per-record numpy backend: the fused backend would collapse
        # the whole chain into one record, which is its own test.
        x = tf.placeholder("x")
        node = x
        for _ in range(20):
            node = tf.tanh(tf.add(node, node))
        plan = tf.compile_plan(node, [x], backend="numpy")
        out = plan.run({x: np.ones(5)})
        ref = tf.Session().run(node, {x: np.ones(5)})
        assert np.array_equal(out, ref)
        assert plan.n_records == 40
        # the fetch keeps one buffer pinned; the rest ping-pong
        assert plan.alloc_count() <= 4

    def test_shape_change_replans_and_keeps_warm_arenas(self):
        fetches, x = _mlp_fetches(False)
        sess = tf.Session()
        plan = tf.compile_plan(fetches, [x])
        fa = {x: np.random.default_rng(1).normal(size=(4, 6))}
        fb = {x: np.random.default_rng(2).normal(size=(9, 6))}
        assert_results_equal(sess.run(fetches, fa), plan.run(fa))
        assert_results_equal(sess.run(fetches, fb), plan.run(fb))
        assert plan.stats.arena_builds == 2
        allocs = plan.alloc_count()
        # revisiting either shape allocates nothing and stays bitwise right
        assert_results_equal(sess.run(fetches, fa), plan.run(fa))
        assert_results_equal(sess.run(fetches, fb), plan.run(fb))
        assert plan.stats.arena_builds == 2
        assert plan.alloc_count() == allocs

    def test_release_arenas_rewarns_and_stays_bitwise(self):
        fetches, x = _mlp_fetches(True)
        feeds = {x: np.random.default_rng(4).normal(size=(5, 6))}
        ref = tf.Session().run(fetches, feeds)
        plan = tf.compile_plan(fetches, [x])
        plan.run(feeds)
        assert plan.alloc_count() > 0
        plan.release_arenas()
        assert plan.alloc_count() == 0
        assert_results_equal(ref, plan.run(feeds))  # warm again
        assert_results_equal(ref, plan.run(feeds))  # steady again
        assert plan.alloc_count() > 0
        assert plan.stats.topo_sorts == 1  # release never recompiles

    def test_engine_release_buffers(self):
        model = DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))
        system = water_box((2, 2, 2), seed=2)
        pi, pj = neighbor_pairs(system, model.config.rcut)
        engine = BatchedEvaluator(model)
        ref = engine.evaluate_batch([system], [(pi, pj)])[0]
        engine.release_buffers()
        assert engine.plan.alloc_count() == 0
        res = engine.evaluate_batch([system], [(pi, pj)])[0]
        assert res.energy == ref.energy
        assert np.array_equal(res.forces, ref.forces)

    def test_arena_cap_evicts_fifo_and_stays_correct(self):
        x = tf.placeholder("x")
        node = tf.tanh(x)
        plan = tf.compile_plan(node, [x], max_arenas=2)
        sess = tf.Session()
        feeds = [{x: np.random.default_rng(k).normal(size=(k + 1,))} for k in range(4)]
        for f in feeds:  # 4 signatures through a 2-arena cap
            assert np.array_equal(plan.run(f), sess.run(node, f))
        assert len(plan.arenas) == 2
        assert plan.stats.arena_evictions == 2
        # an evicted signature re-warms and is still bitwise right
        assert np.array_equal(plan.run(feeds[0]), sess.run(node, feeds[0]))
        assert plan.stats.arena_builds == 5

    def test_wrong_feed_count_raises(self):
        x, y = tf.placeholder("x"), tf.placeholder("y")
        plan = tf.compile_plan(tf.add(x, y), [x, y])
        plan.run({x: np.ones(2), y: np.ones(2)})
        with pytest.raises(ValueError, match="expects 2 feed values"):
            plan.run_list([np.ones(2)])

    def test_register_out_kernel_upgrades_op_to_arena_mode(self):
        # The extension hook for third-party ops: attaching an out= kernel
        # after registration moves plans compiled afterwards from the copy
        # fallback to destination-passing execution, bitwise unchanged.
        from repro.tfmini.ops import register_out_kernel

        register_op("plan_test_double", lambda inputs, attrs: inputs[0] * 2.0)
        x = tf.placeholder("x")
        node = graph.Node("plan_test_double", (x,))
        feeds = {x: np.arange(5.0)}
        ref = tf.Session().run(node, feeds)

        register_out_kernel(
            "plan_test_double",
            lambda inputs, attrs, out: np.multiply(inputs[0], 2.0, out=out),
        )
        plan = tf.compile_plan(node, [x], copy_fetches=False)
        plan.run(feeds)
        out1, out2 = plan.run(feeds), plan.run(feeds)
        assert np.array_equal(out1, ref)
        assert out1 is out2  # OUT mode: stable arena buffer

    def test_mark_alias_op_affects_later_plans(self):
        from repro.tfmini.plan import ALIAS_OPS, mark_alias_op

        register_op("plan_test_first_half", lambda inputs, attrs: inputs[0][: len(inputs[0]) // 2])
        assert "plan_test_first_half" not in ALIAS_OPS
        mark_alias_op("plan_test_first_half")
        try:
            x = tf.placeholder("x")
            node = tf.tanh(graph.Node("plan_test_first_half", (x,)))
            plan = tf.compile_plan(node, [x])
            feeds = {x: np.linspace(0, 1, 8)}
            ref = tf.Session().run(node, feeds)
            plan.run(feeds)
            assert np.array_equal(plan.run(feeds), ref)
            # alias records own no arena buffer: only tanh allocated
            assert plan.alloc_count() == 1
        finally:
            ALIAS_OPS.discard("plan_test_first_half")

    def test_missing_placeholder_raises_at_compile(self):
        x = tf.placeholder("x")
        y = tf.placeholder("y")
        with pytest.raises(KeyError, match="placeholder 'y'"):
            tf.compile_plan(tf.add(x, y), [x])

    def test_missing_feed_value_raises_at_run(self):
        x = tf.placeholder("x")
        plan = tf.compile_plan(tf.tanh(x), [x])
        with pytest.raises(KeyError, match="missing from feeds"):
            plan.run({})

    def test_variable_updates_are_visible(self):
        # Plans re-read Variable.value every run (TF1 semantics: optimizers
        # assign in place between steps).
        v = tf.variable(np.ones(3), name="v")
        x = tf.placeholder("x")
        node = tf.mul(v, x)
        plan = tf.compile_plan(node, [x])
        feeds = {x: np.full(3, 2.0)}
        assert np.array_equal(plan.run(feeds), np.full(3, 2.0))
        v.assign(np.full(3, 5.0))
        assert np.array_equal(plan.run(feeds), np.full(3, 10.0))

    def test_copy_fallback_for_ops_without_out_kernel(self):
        # An op registered with no forward_out executes under plans via the
        # allocate-and-copy-into-slot fallback: results match the oracle and
        # the slot's storage is the same stable buffer on every steady run.
        register_op("plan_test_cube", lambda inputs, attrs: inputs[0] ** 3)
        x = tf.placeholder("x")
        node = graph.Node("plan_test_cube", (x,))
        plan = tf.compile_plan(node, [x], copy_fetches=False)
        feeds = {x: np.arange(4.0)}
        ref = tf.Session().run(node, feeds)
        plan.run(feeds)  # warm run returns the plain kernel's fresh array
        out1 = plan.run(feeds)
        out2 = plan.run(feeds)
        assert np.array_equal(out1, ref)
        assert out1 is out2  # stable arena slot, not a fresh allocation

    def test_copy_fetches_decouples_results_from_arena(self):
        x = tf.placeholder("x")
        node = tf.tanh(x)
        plan = tf.compile_plan(node, [x], copy_fetches=True)
        plan.run({x: np.zeros(3)})
        a = plan.run({x: np.zeros(3)})
        b = plan.run({x: np.ones(3)})
        assert np.array_equal(a, np.tanh(np.zeros(3)))  # not clobbered by b
        assert np.array_equal(b, np.tanh(np.ones(3)))


class TestProfilingParity:
    def test_opstats_parity_with_session(self):
        fetches, x = _mlp_fetches(True)
        feeds = {x: np.random.default_rng(5).normal(size=(6, 6))}
        s_ref = tf.Session(profile=True)
        s_ref.run(fetches, feeds)

        # Per-record parity needs the per-record backend: fusion rewrites
        # the tape's op inventory (member ops become one fused record).
        plan = tf.compile_plan(fetches, [x], backend="numpy")
        s_warm = tf.Session(profile=True)
        plan.run(feeds, session=s_warm)  # warm (plain kernels)
        s_steady = tf.Session(profile=True)
        plan.run(feeds, session=s_steady)  # steady (arena kernels)

        for s in (s_warm, s_steady):
            assert dict(s.stats.calls) == dict(s_ref.stats.calls)
            assert dict(s.stats.flops) == dict(s_ref.stats.flops)
            assert dict(s.stats.bytes) == dict(s_ref.stats.bytes)

    def test_unprofiled_plan_records_nothing(self):
        fetches, x = _mlp_fetches(False)
        plan = tf.compile_plan(fetches, [x])
        sess = tf.Session(profile=False)
        plan.run({x: np.ones((2, 6))}, session=sess)
        assert sess.stats.total_seconds() == 0.0


# ---------------------------------------------------------------------------
# DP models: zoo x precision, batched evaluation, training step
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def zoo_models():
    """water/copper x double/single — single via the Sec 5.2.3 fp32 clone."""
    from repro.zoo import as_mixed_precision, get_copper_model, get_water_model

    water = get_water_model()
    copper = get_copper_model()
    return {
        ("water", "double"): water,
        ("water", "single"): as_mixed_precision(water),
        ("copper", "double"): copper,
        ("copper", "single"): as_mixed_precision(copper),
    }


@pytest.fixture(scope="module")
def zoo_systems():
    # box edges must exceed 2x the zoo cutoffs (4 A water, 5 A copper)
    return {"water": water_box((3, 3, 3), seed=3), "copper": fcc_lattice((3, 3, 3))}


class TestDeepPotPlans:
    @pytest.mark.parametrize("name", ["water", "copper"])
    @pytest.mark.parametrize("precision", ["double", "single"])
    def test_zoo_bitwise_vs_session_oracle(self, zoo_models, zoo_systems, name, precision):
        """DeepPot.evaluate (compiled plan) == the same engine on Session.run."""
        model = zoo_models[(name, precision)]
        system = zoo_systems[name]
        pi, pj = neighbor_pairs(system, model.config.rcut)
        res_plan = model.evaluate(system, pi, pj)
        oracle = BatchedEvaluator(model, use_plan=False)
        res_sess = oracle.evaluate_batch([system], [(pi, pj)])[0]
        assert res_plan.energy == res_sess.energy
        assert np.array_equal(res_plan.forces, res_sess.forces)
        assert np.array_equal(res_plan.virial, res_sess.virial)
        assert np.array_equal(res_plan.atom_energies, res_sess.atom_energies)
        # ... and the serial single-frame oracle agrees too (R=1 contract)
        res_serial = model.evaluate_serial(system, pi, pj)
        assert res_plan.energy == res_serial.energy
        assert np.array_equal(res_plan.forces, res_serial.forces)

    @pytest.mark.parametrize("name", ["water", "copper"])
    def test_batched_r3_bitwise_vs_session_oracle(self, zoo_models, zoo_systems, name):
        """R>1 planned batches == the identical batch through Session.run."""
        model = zoo_models[(name, "double")]
        base = zoo_systems[name]
        systems = []
        for k in range(3):
            s = base.copy()
            rng = np.random.default_rng(50 + k)
            s.positions = s.positions + rng.normal(scale=0.02, size=s.positions.shape)
            systems.append(s)
        pls = [neighbor_pairs(s, model.config.rcut) for s in systems]
        planned = BatchedEvaluator(model).evaluate_batch(systems, pls)
        oracle = BatchedEvaluator(model, use_plan=False).evaluate_batch(systems, pls)
        for p, o in zip(planned, oracle):
            assert p.energy == o.energy
            assert np.array_equal(p.forces, o.forces)
            assert np.array_equal(p.virial, o.virial)
            assert np.array_equal(p.atom_energies, o.atom_energies)

    def test_engine_plan_counters(self, zoo_models, zoo_systems):
        model = zoo_models[("water", "double")]
        system = zoo_systems["water"]
        pi, pj = neighbor_pairs(system, model.config.rcut)
        engine = BatchedEvaluator(model)
        before = graph.TOPO_SORT_CALLS
        engine.evaluate_batch([system], [(pi, pj)])  # compile + warm
        assert graph.TOPO_SORT_CALLS == before + 1
        allocs = engine.plan.alloc_count()
        for _ in range(3):
            engine.evaluate_batch([system], [(pi, pj)])
        assert graph.TOPO_SORT_CALLS == before + 1  # no per-run topo_sort
        assert engine.plan.alloc_count() == allocs  # no steady-state allocs
        assert engine.plan.stats.runs == 4

    def test_profiled_evaluate_matches_session_oracle_counts(
        self, zoo_models, zoo_systems
    ):
        """Fig-3 instrumentation parity on the real DP graph."""
        model = zoo_models[("water", "double")]
        system = zoo_systems["water"]
        pi, pj = neighbor_pairs(system, model.config.rcut)
        # numpy backend pinned: per-op profiling parity is a per-record
        # property (fusion rewrites the op inventory).
        planned = BatchedEvaluator(model, plan_backend="numpy")
        oracle = BatchedEvaluator(model, use_plan=False)
        planned.evaluate_batch([system], [(pi, pj)])  # warm outside profiling
        session = model.session
        counts = {}
        try:
            session.profile = True
            for key, engine in (("plan", planned), ("sess", oracle)):
                session.stats.reset()
                engine.evaluate_batch([system], [(pi, pj)])
                counts[key] = (
                    dict(session.stats.calls),
                    dict(session.stats.flops),
                    dict(session.stats.bytes),
                )
        finally:
            session.profile = False
            session.stats.reset()
        assert counts["plan"] == counts["sess"]
        assert sum(counts["plan"][0].values()) > 0


class TestTrainingStepPlans:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.zoo import build_water_dataset

        return build_water_dataset(n_frames=4, seed=11)

    def test_adam_step_bitwise_vs_session_oracle(self, dataset):
        """One full Adam step through the plan == through Session.run:
        same loss, and every updated parameter bitwise identical."""
        cfg = DPConfig.tiny(rcut=4.0)
        tcfg = TrainConfig(n_steps=4, seed=5)
        m_plan = DeepPot(cfg, rng=np.random.default_rng(9))
        m_sess = DeepPot(cfg, rng=np.random.default_rng(9))
        dataset.apply_stats(m_plan)
        dataset.apply_stats(m_sess)
        t_plan = Trainer(m_plan, dataset, tcfg)
        t_sess = Trainer(m_sess, dataset, tcfg, use_plan=False)
        for _ in range(2):  # warm step + steady (arena-backed) step
            loss_p = t_plan.step()
            loss_s = t_sess.step()
            assert loss_p == loss_s
        for vp, vs in zip(t_plan.variables, t_sess.variables):
            assert np.array_equal(vp.value, vs.value), vp.name

    def test_trainer_plan_counters(self, dataset):
        cfg = DPConfig.tiny(rcut=4.0)
        model = DeepPot(cfg)
        dataset.apply_stats(model)
        trainer = Trainer(model, dataset, TrainConfig(n_steps=4, seed=5))
        trainer.step()
        before = graph.TOPO_SORT_CALLS
        trainer.step()
        trainer.step()
        assert graph.TOPO_SORT_CALLS == before  # compiled once, never again
        assert trainer.plan.stats.topo_sorts == 1
        # equal-sized frames share one warm arena: no steady-state allocs
        allocs = trainer.plan.alloc_count()
        trainer.step()
        assert trainer.plan.alloc_count() == allocs


class TestServingPlans:
    def test_server_serves_planned_results_bitwise(self):
        """The serving worker's persistent engines execute through plans;
        served results stay bitwise identical to direct evaluation."""
        from repro.serving.worker import InferenceServer

        model = DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))
        system = water_box((2, 2, 2), seed=1)
        pi, pj = neighbor_pairs(system, model.config.rcut)
        direct = model.evaluate(system, pi, pj)
        with InferenceServer({"tiny": model}, max_batch=4) as server:
            stats0 = server.executor_stats()["tiny"]
            assert stats0["topo_sorts"] == 1  # compiled at registration
            futures = [server.submit("tiny", system, pi, pj) for _ in range(5)]
            results = [f.result(timeout=30) for f in futures]
        for res in results:
            assert res.energy == direct.energy
            assert np.array_equal(res.forces, direct.forces)
            assert np.array_equal(res.atom_energies, direct.atom_energies)
        stats = server.executor_stats()["tiny"]
        assert stats["topo_sorts"] == 1  # still exactly one graph traversal
        assert stats["runs"] >= 2  # 5 requests, max_batch=4 -> >= 2 batches
        assert stats["arena_builds"] >= 1
