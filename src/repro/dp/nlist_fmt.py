"""Neighbor-list formatting: the paper's Sec 5.2.1 layout and Sec 5.2.2 codec.

The DP descriptor is permutationally invariant, so any neighbor order is
physically equivalent.  The optimized DeePMD-kit exploits this by fixing a
*canonical* order per atom:

1. sort neighbors by atomic type;
2. within each type, sort by distance (nearest first);
3. pad each type block to its cutoff count ``sel[t]`` with empty slots.

The padding removes per-neighbor type branching from the embedding-matrix
computation (every slot in a block has the same type), and distance sorting
guarantees that when an atom briefly has more neighbors of a type than
``sel[t]``, the *farthest* ones are dropped — avoiding the unphysical
artifacts Sec 5.2.1 warns about.

The 64-bit codec packs one neighbor record into an unsigned integer

    key = type * 10^15 + floor(dist * 10^8) * 10^5 + index

(4 digits of type, 10 of distance, 5 of index), so a single scalar sort
replaces a struct sort.  Field-range violations (index >= 10^5, distance >=
100 Å) raise instead of silently corrupting keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.md.box import Box
from repro.md.neighbor import full_pairs
from repro.md.system import System

# Codec field scales (paper Sec 5.2.2).
_TYPE_SCALE = np.uint64(10**15)
_DIST_SCALE = np.uint64(10**5)
_DIST_QUANTUM = 1.0e8  # distance resolution: 1e-8 Å
_MAX_INDEX = 10**5
_MAX_DIST = 100.0  # Å, 10 digits of quantized distance
_MAX_TYPE = 10**4  # 4 digits

#: Marker for padded (empty) neighbor slots.
PAD = -1


def compress_entries(
    types: np.ndarray, dists: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Pack (type, distance, index) records into uint64 sort keys."""
    types = np.asarray(types)
    dists = np.asarray(dists, dtype=np.float64)
    indices = np.asarray(indices)
    if indices.size and indices.max() >= _MAX_INDEX:
        raise ValueError(
            f"neighbor index {indices.max()} exceeds the codec's 5-digit field "
            f"(>= {_MAX_INDEX}); the paper notes this range is 'rarely exceeded' "
            f"per MPI sub-domain — shrink the sub-domain"
        )
    if indices.size and indices.min() < 0:
        raise ValueError("negative neighbor index cannot be encoded")
    if dists.size and dists.max() >= _MAX_DIST:
        raise ValueError(
            f"distance {dists.max():.3f} Å exceeds the codec's 10-digit field"
        )
    if types.size and (types.max() >= _MAX_TYPE or types.min() < 0):
        raise ValueError("atomic type outside the codec's 4-digit field")
    key = (
        types.astype(np.uint64) * _TYPE_SCALE
        + np.floor(dists * _DIST_QUANTUM).astype(np.uint64) * _DIST_SCALE
        + indices.astype(np.uint64)
    )
    return key


def decompress_entries(keys: np.ndarray):
    """Unpack uint64 keys back to (type, quantized distance, index)."""
    keys = np.asarray(keys, dtype=np.uint64)
    types = (keys // _TYPE_SCALE).astype(np.int64)
    rem = keys % _TYPE_SCALE
    dists = (rem // _DIST_SCALE).astype(np.float64) / _DIST_QUANTUM
    indices = (rem % _DIST_SCALE).astype(np.int64)
    return types, dists, indices


@dataclass
class FormattedNeighbors:
    """The padded, canonical neighbor layout consumed by the DP operators.

    Attributes
    ----------
    nlist:
        (nloc, nnei) int array of neighbor atom indices, PAD (-1) in empty
        slots.  Slot ranges [sel_start[t], sel_start[t+1]) hold type-t
        neighbors sorted by distance.
    sel:
        Neighbors retained per type (the paper: water [46, 92], Cu [500]).
    sel_start:
        Prefix offsets of the type blocks within a row.
    n_dropped:
        Number of true neighbors discarded because a type block overflowed
        ``sel[t]`` (distance sorting guarantees these are the farthest).
    """

    nlist: np.ndarray
    sel: tuple[int, ...]
    sel_start: tuple[int, ...]
    n_dropped: int = 0

    @property
    def nloc(self) -> int:
        return self.nlist.shape[0]

    @property
    def nnei(self) -> int:
        return self.nlist.shape[1]

    def mask(self) -> np.ndarray:
        """Boolean (nloc, nnei): True where a real neighbor occupies the slot."""
        return self.nlist != PAD

    def slot_types(self) -> np.ndarray:
        """(nnei,) type index of each slot in the canonical layout."""
        out = np.empty(self.nnei, dtype=np.int64)
        for t, s in enumerate(self.sel):
            out[self.sel_start[t] : self.sel_start[t] + s] = t
        return out


def _gather_raw(
    system: System,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    rcut: float,
    nloc: int,
    pbc: bool,
):
    """Per-pair (i, j, dist) within rcut, directed, centers restricted to
    the first ``nloc`` atoms (locals; the rest are ghosts)."""
    fi, fj = full_pairs(pair_i, pair_j)
    disp = system.positions[fj] - system.positions[fi]
    if pbc:
        disp = system.box.minimum_image(disp)
    r = np.sqrt(np.einsum("ij,ij->i", disp, disp))
    keep = (r <= rcut) & (fi < nloc)
    return fi[keep], fj[keep], r[keep]


def format_neighbors(
    system: System,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    rcut: float,
    sel: Sequence[int],
    use_compression: bool = True,
    nloc: Optional[int] = None,
    pbc: bool = True,
    out: Optional[FormattedNeighbors] = None,
) -> FormattedNeighbors:
    """Build the canonical padded neighbor layout (the optimized path).

    ``pair_i/pair_j`` is a half list that may include skin pairs; distances
    are re-measured and filtered to ``rcut``.  When ``use_compression`` is
    True, the (type, dist, index) sort uses the 64-bit scalar keys; otherwise
    an equivalent lexicographic record sort is used.  Both produce the same
    canonical order — the codec exists for speed, not semantics (keys quantize
    distance to 1e-8 Å, so exact ties may order differently; physically
    equivalent by permutation invariance).

    ``nloc`` restricts descriptor rows to the first nloc atoms (the MPI-local
    atoms of Fig 1 (a)); neighbor indices may point into the ghost region.

    ``out`` recycles the ``nlist`` storage of a previous layout with the same
    shape and ``sel`` (the steady-state MD case: same atoms every rebuild),
    so per-step formatting allocates no new (nloc, nnei) array.  The contents
    are fully rewritten; a shape/sel mismatch falls back to fresh storage.
    """
    sel = tuple(int(s) for s in sel)
    if len(sel) != system.n_types:
        raise ValueError(f"sel has {len(sel)} entries for {system.n_types} types")
    nloc = system.n_atoms if nloc is None else int(nloc)
    nnei = int(sum(sel))
    sel_start = tuple(int(x) for x in np.concatenate([[0], np.cumsum(sel)[:-1]]))

    fi, fj, r = _gather_raw(system, pair_i, pair_j, rcut, nloc, pbc)
    tj = system.types[fj]

    if use_compression:
        keys = compress_entries(tj, r, fj)
        order = np.lexsort((keys, fi))
    else:
        order = np.lexsort((fj, r, tj, fi))
    fi, fj, r, tj = fi[order], fj[order], r[order], tj[order]

    if out is not None and out.sel == sel and out.nlist.shape == (nloc, nnei):
        nlist = out.nlist
        nlist.fill(PAD)
    else:
        nlist = np.full((nloc, nnei), PAD, dtype=np.int64)
    n_dropped = 0
    if fi.size:
        # Rank of each entry within its (atom, type) group — vectorized via
        # sorted-run arithmetic: entries are grouped by (fi, tj) after sorting.
        group_change = np.empty(fi.size, dtype=bool)
        group_change[0] = True
        group_change[1:] = (fi[1:] != fi[:-1]) | (tj[1:] != tj[:-1])
        group_id = np.cumsum(group_change) - 1
        group_first = np.flatnonzero(group_change)
        rank = np.arange(fi.size) - group_first[group_id]

        sel_arr = np.asarray(sel)
        start_arr = np.asarray(sel_start)
        keep = rank < sel_arr[tj]
        n_dropped = int(np.count_nonzero(~keep))
        cols = start_arr[tj[keep]] + rank[keep]
        nlist[fi[keep], cols] = fj[keep]

    if out is not None and nlist is out.nlist:
        out.n_dropped = n_dropped
        return out
    return FormattedNeighbors(nlist=nlist, sel=sel, sel_start=sel_start, n_dropped=n_dropped)


def format_neighbors_baseline(
    system: System,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    rcut: float,
    sel: Sequence[int],
    nloc: Optional[int] = None,
    pbc: bool = True,
) -> FormattedNeighbors:
    """Reference AoS implementation: per-atom Python lists of (type, dist, j)
    records sorted with tuple comparison — the pre-optimization data path.

    Exists for Table 3 / Sec 5.2 benchmarking and as a differential-testing
    oracle for :func:`format_neighbors`.
    """
    sel = tuple(int(s) for s in sel)
    nloc = system.n_atoms if nloc is None else int(nloc)
    nnei = int(sum(sel))
    sel_start = list(np.concatenate([[0], np.cumsum(sel)[:-1]]).astype(int))

    fi, fj, r = _gather_raw(system, pair_i, pair_j, rcut, nloc, pbc)
    records: list[list[tuple]] = [[] for _ in range(nloc)]
    for a, b, dist in zip(fi.tolist(), fj.tolist(), r.tolist()):
        records[a].append((int(system.types[b]), dist, b))

    nlist = np.full((nloc, nnei), PAD, dtype=np.int64)
    n_dropped = 0
    for a in range(nloc):
        records[a].sort()
        fill = [0] * len(sel)
        for t, _dist, b in records[a]:
            if fill[t] < sel[t]:
                nlist[a, sel_start[t] + fill[t]] = b
                fill[t] += 1
            else:
                n_dropped += 1
    return FormattedNeighbors(
        nlist=nlist, sel=sel, sel_start=tuple(sel_start), n_dropped=n_dropped
    )
