"""Symbolic shape/dtype algebra for the static plan verifier.

Tensor extents are modelled as integer-coefficient polynomials over named
symbols (:class:`Dim`): the DP evaluate graph's row counts become ``n_t0``,
``n_t0 + n_t1``, ``4*n_t0`` and so on, bound from the feed signature that
:func:`repro.analysis.plancheck.dp_feed_spec` describes.  Inference over the
compiled tape (see ``OpDef.infer`` in :mod:`repro.tfmini.ops`) manipulates
dims with plain ``+``/``*`` arithmetic; anything that needs unification,
broadcasting or exact division goes through the :class:`InferContext` the
verifier passes to each rule, so the op registry never has to import this
module.

Two deliberate semantic choices keep the algebra decidable:

* symbols denote *positive* integer extents, and a symbolic dim is treated
  as "not 1" for broadcasting purposes (a symbol that happens to bind to 1
  at run time broadcasts differently — the runtime-agreement tests cover
  that gap);
* two distinct polynomials are only reported as a mismatch when both are
  fully concrete.  Otherwise the context *unifies* them: a bare symbol is
  bound to the other side, and anything harder is recorded as an assumed
  constraint, never a hard error.  The verifier stays sound for the bug
  classes it claims (liveness/alias/fetch/dtype) while staying silent on
  shapes it cannot prove wrong.
"""

from __future__ import annotations

import itertools
from typing import Optional, Union

import numpy as np


class ShapeError(Exception):
    """A provable shape/dtype inconsistency found during inference."""


class Dim:
    """An integer-coefficient polynomial over named symbolic extents.

    Immutable.  ``_terms`` maps a monomial — a sorted tuple of symbol names,
    ``()`` for the constant term — to its nonzero integer coefficient.
    Supports ``+``, ``-``, ``*`` with ints and other dims; exact division
    lives in :func:`dim_div` because it can fail.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: dict):
        self._terms = {m: c for m, c in terms.items() if c != 0}

    # -- constructors -----------------------------------------------------

    @staticmethod
    def const(value: int) -> "Dim":
        return Dim({(): int(value)})

    @staticmethod
    def symbol(name: str) -> "Dim":
        return Dim({(str(name),): 1})

    # -- predicates -------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return all(m == () for m in self._terms)

    @property
    def value(self) -> Optional[int]:
        """The concrete value, or None if any symbol remains."""
        if not self._terms:
            return 0
        if self.is_constant:
            return self._terms[()]
        return None

    def symbols(self) -> set:
        return {s for m in self._terms for s in m}

    # -- arithmetic -------------------------------------------------------

    def _coerce(self, other) -> Optional["Dim"]:
        if isinstance(other, Dim):
            return other
        if isinstance(other, (int, np.integer)):
            return Dim.const(int(other))
        return None

    def __add__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        terms = dict(self._terms)
        for m, c in o._terms.items():
            terms[m] = terms.get(m, 0) + c
        return Dim(terms)

    __radd__ = __add__

    def __sub__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self + (o * -1)

    def __rsub__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return o - self

    def __mul__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        terms: dict = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in o._terms.items():
                m = tuple(sorted(m1 + m2))
                terms[m] = terms.get(m, 0) + c1 * c2
        return Dim(terms)

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1

    # -- comparison / hashing --------------------------------------------

    def __eq__(self, other):
        if isinstance(other, (int, np.integer)):
            return self.is_constant and self.value == int(other)
        if isinstance(other, Dim):
            return self._terms == other._terms
        return NotImplemented

    def __hash__(self):
        return hash(frozenset(self._terms.items()))

    def __repr__(self):
        if not self._terms:
            return "0"
        parts = []
        for m, c in sorted(self._terms.items(), key=lambda kv: (-len(kv[0]), kv[0])):
            body = "*".join(m)
            if not m:
                parts.append(str(c))
            elif c == 1:
                parts.append(body)
            elif c == -1:
                parts.append(f"-{body}")
            else:
                parts.append(f"{c}*{body}")
        out = parts[0]
        for p in parts[1:]:
            out += p if p.startswith("-") else f"+{p}"
        return out


DimLike = Union[int, Dim]


def as_dim(x) -> DimLike:
    """Normalize a shape entry: ints stay ints, strings become symbols."""
    if isinstance(x, Dim):
        v = x.value
        return v if v is not None else x
    if isinstance(x, str):
        return Dim.symbol(x)
    if isinstance(x, (int, np.integer)):
        return int(x)
    raise TypeError(f"cannot interpret {x!r} as a dimension")


def as_shape(shape) -> tuple:
    return tuple(as_dim(d) for d in shape)


def dim_value(d: DimLike) -> Optional[int]:
    """Concrete value of a dim, or None when symbolic."""
    if isinstance(d, Dim):
        return d.value
    return int(d)


def dim_div(a: DimLike, b: DimLike) -> Optional[DimLike]:
    """Exact division ``a / b``; None when inexact or not expressible.

    Handles the two cases shape inference needs: concrete/concrete, and
    polynomial divided by a single-term divisor (``(n*s*4)/ (s*4) -> n``).
    """
    av, bv = dim_value(a), dim_value(b)
    if bv == 0:
        return None
    if av is not None and bv is not None:
        return av // bv if av % bv == 0 else None
    b = as_dim(b) if not isinstance(b, Dim) else b
    if isinstance(b, int):
        b = Dim.const(b)
    if len(b._terms) != 1:
        return None
    (bm, bc), = b._terms.items()
    a = Dim.const(a) if not isinstance(a, Dim) else a
    out: dict = {}
    for m, c in a._terms.items():
        if c % bc != 0:
            return None
        rem = list(m)
        for s in bm:
            if s not in rem:
                return None
            rem.remove(s)
        out[tuple(rem)] = c // bc
    return as_dim(Dim(out))


def format_shape(shape) -> str:
    if shape is None:
        return "?"
    return "(" + ", ".join(str(d) for d in shape) + ")"


class InferContext:
    """Mutable state threaded through one inference walk over a tape.

    Holds the symbol substitution (bindings accumulated by unification), the
    list of assumed-but-unproven constraints, and helpers that op inference
    rules call — so rules in :mod:`repro.tfmini.ops` stay free of any import
    of this module.
    """

    def __init__(self):
        self._bindings: dict[str, DimLike] = {}
        self.notes: list[str] = []
        self._fresh_counter = itertools.count()
        # Per-record scratch, set by the verifier before each infer call.
        self.input_values: list = []
        self._where: str = ""

    # -- error reporting --------------------------------------------------

    def set_site(self, where: str) -> None:
        self._where = where

    def fail(self, message: str):
        raise ShapeError(f"{self._where}: {message}" if self._where else message)

    def note(self, message: str) -> None:
        self.notes.append(f"{self._where}: {message}" if self._where else message)

    # -- symbols ----------------------------------------------------------

    def fresh(self, hint: str = "d") -> Dim:
        return Dim.symbol(f"{hint}?{next(self._fresh_counter)}")

    def bind(self, name: str, value: DimLike) -> None:
        self._bindings[name] = value

    def resolve(self, d: DimLike) -> DimLike:
        """Apply accumulated bindings to a dim (to fixpoint)."""
        for _ in range(64):  # bindings are acyclic; bound is paranoia
            if not isinstance(d, Dim):
                return int(d)
            hits = d.symbols() & self._bindings.keys()
            if not hits:
                return as_dim(d)  # normalizes constant polynomials to ints
            out: DimLike = Dim.const(0)
            for m, c in d._terms.items():
                term: DimLike = c
                for s in m:
                    term = term * self._bindings.get(s, Dim.symbol(s))
                out = out + term
            d = as_dim(out)
        return d

    def resolve_shape(self, shape) -> tuple:
        return tuple(self.resolve(d) for d in shape)

    # -- unification ------------------------------------------------------

    def eq(self, a: DimLike, b: DimLike) -> Optional[bool]:
        """True / False when provable after resolution, None when open."""
        a, b = self.resolve(a), self.resolve(b)
        av, bv = dim_value(a), dim_value(b)
        if av is not None and bv is not None:
            return av == bv
        if as_dim(a) == as_dim(b):
            return True
        return None

    def unify(self, a: DimLike, b: DimLike, what: str = "dim") -> DimLike:
        """Require ``a == b``: fail on a provable mismatch, bind a bare
        symbol when possible, otherwise record an assumed constraint."""
        a, b = self.resolve(a), self.resolve(b)
        verdict = self.eq(a, b)
        if verdict is True:
            return a
        if verdict is False:
            self.fail(f"{what} mismatch: {a} != {b}")
        for x, y in ((a, b), (b, a)):
            if isinstance(x, Dim) and len(x._terms) == 1:
                (m, c), = x._terms.items()
                if len(m) == 1 and c == 1:
                    sym = m[0]
                    other = y if not isinstance(y, Dim) else y
                    if not (isinstance(other, Dim) and sym in other.symbols()):
                        self.bind(sym, other)
                        return self.resolve(x)
        self.note(f"assumed {what}: {a} == {b}")
        return a

    def unify_shapes(self, sa, sb, what: str = "shape") -> tuple:
        if len(sa) != len(sb):
            self.fail(f"{what} rank mismatch: {format_shape(sa)} vs {format_shape(sb)}")
        return tuple(self.unify(a, b, what) for a, b in zip(sa, sb))

    # -- helpers the op rules call ---------------------------------------

    def broadcast(self, sa, sb) -> tuple:
        """NumPy-style broadcast of two shapes with symbolic dims."""
        out = []
        for i in range(max(len(sa), len(sb))):
            a = sa[len(sa) - 1 - i] if i < len(sa) else 1
            b = sb[len(sb) - 1 - i] if i < len(sb) else 1
            a, b = self.resolve(a), self.resolve(b)
            if dim_value(a) == 1:
                out.append(b)
            elif dim_value(b) == 1:
                out.append(a)
            else:
                out.append(self.unify(a, b, "broadcast dim"))
        return tuple(reversed(out))

    def prod(self, dims) -> DimLike:
        total: DimLike = 1
        for d in dims:
            total = total * self.resolve(d)  # int*Dim / Dim*int both work
        return as_dim(total) if isinstance(total, Dim) else total

    def div(self, a: DimLike, b: DimLike) -> Optional[DimLike]:
        return dim_div(self.resolve(a), self.resolve(b))

    def value(self, index: int):
        """Known scalar value of input ``index`` (tiny int feeds), or None.

        Returns an int for concrete bindings, a :class:`Dim` for symbolic
        value-parameters declared in a feed spec (e.g. the DP graph's
        ``natoms`` feed, which parameterizes ``prod_force``'s output rows).
        """
        if index >= len(self.input_values):
            return None
        v = self.input_values[index]
        if v is None:
            return None
        return self.resolve(v) if isinstance(v, Dim) else v
