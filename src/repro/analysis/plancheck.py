"""Static verification of compiled execution plans (repro.tfmini.plan).

The compiled tape is the repo's hot path, and its buffer arena is exactly
the kind of allocator whose bugs are silent: a liveness pass that retires a
storage group one record too early, an alias union dropped for a view op,
or a fetch left unpinned produces *plausible numbers* that are wrong only
for some feed shapes.  The plan compiler's staged pipeline (tape
scheduling, interference-coloring allocation, parallel span execution —
see :mod:`repro.tfmini.plan`) raises the stakes: a scheduler or coloring
bug corrupts values (or races) silently.  This module is the independent
compile-time proof layer:

**Structural soundness** (no feed values needed)

====  ======================================================================
P101  undefined-read: a record (or fetch) reads a slot no earlier feed,
      variable, constant or record defines
P102  use-after-free: a record reads a slot after the liveness pass retired
      its storage group
P103  arena-overlap: a warm arena gives a record a buffer whose bytes
      overlap an earlier record's buffer while that record's storage group
      is still live (address-interval check, so it sees straight through
      the coloring allocator's slab views)
P104  alias-broken: a view record (``reshape``/``item``/...) whose output
      is not in the same storage group as its inputs
P105  fetch-unpinned: a fetched slot whose storage group is not pinned
      immortal (a later run could recycle the caller's result)
P109  span-hazard: two records in the same parallel span share a storage
      group, read each other's outputs, or have byte-overlapping buffers
      (write-write / read-write) — a data race under ``span_workers > 1``
P110  fused-record unsound: a fused elementwise group (``backend="fused"``)
      with a non-elementwise member, a member reading outside the group's
      dataflow, an internal member slot escaping the group (read by an
      outside record or fetched), or a member dtype chain inconsistent
      with its declared cast points / the warm run's recorded metadata
====  ======================================================================

**Symbolic shape & dtype inference** (given a feed spec)

====  ======================================================================
P106  feed-missing: a reachable feed with no entry in the spec
P107  shape-mismatch: an op rule proves its input shapes inconsistent (or
      inferred shapes disagree with a concrete run)
P108  dtype-mix: fp32 and fp64 meet in one op outside a declared ``cast``
      point (or inferred dtypes disagree with a concrete run)
====  ======================================================================

Dims are named symbols (``n_t0``, ``natoms``) bound from the feed
signature — see :func:`dp_feed_spec` — and propagated through each tape
record by the per-op ``infer`` rules registered on ``OpDef``
(:mod:`repro.tfmini.ops`).  Entry points: ``plan.verify()``,
``compile_plan(..., verify=True)``, the ``REPRO_VERIFY_PLANS=1``
environment toggle, and the ``repro check-plans`` CLI which runs
:func:`check_all_plans` over the model zoo's evaluate/train/serving plans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.shapes import (
    Dim,
    InferContext,
    ShapeError,
    as_shape,
    format_shape,
)

# Input positions that only lend their *shape* to an op (zeros_like /
# reshape targets); their dtype never mixes into the arithmetic, so the
# P108 float-width check skips them.
_SHAPE_ONLY_INPUTS = {
    "reduce_to_shape": {1},
    "broadcast_like": {1},
    "reshape_like": {1},
    "split_part": {1, 2},
    "split_part_grad": {1, 2},
}


@dataclass
class PlanFinding:
    """One verifier diagnostic, anchored to a tape record."""

    rule: str  # "P101".."P109"
    message: str
    record: Optional[int] = None  # tape index, None for plan-level findings
    op: Optional[str] = None

    def __str__(self) -> str:
        where = f" [record {self.record}{f' {self.op}' if self.op else ''}]" \
            if self.record is not None else ""
        return f"{self.rule}{where}: {self.message}"


@dataclass
class PlanReport:
    """Result of one verification pass, with per-record diagnostics."""

    findings: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    records: list = field(default_factory=list)  # one diagnostic line per record
    n_records: int = 0
    n_slots: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def rules(self) -> set:
        return {f.rule for f in self.findings}

    def by_rule(self, rule: str) -> list:
        return [f for f in self.findings if f.rule == rule]

    def summary(self) -> str:
        head = (
            f"plan: {self.n_records} records over {self.n_slots} slots — "
            + ("OK" if self.ok else f"{len(self.findings)} finding(s)")
        )
        lines = [head]
        lines += [f"  {f}" for f in self.findings]
        if self.notes:
            lines.append(f"  ({len(self.notes)} assumption note(s))")
        return "\n".join(lines)

    def detail(self) -> str:
        """The full per-record tape walk, for humans chasing a finding."""
        return "\n".join([self.summary(), *self.records])

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "n_records": self.n_records,
                "n_slots": self.n_slots,
                "findings": [
                    {
                        "rule": f.rule,
                        "record": f.record,
                        "op": f.op,
                        "message": f.message,
                    }
                    for f in self.findings
                ],
                "notes": list(self.notes),
            },
            indent=2,
        )


class PlanVerificationError(RuntimeError):
    """Raised by ``compile_plan(..., verify=True)`` on a failed report."""

    def __init__(self, report: PlanReport):
        super().__init__(report.summary())
        self.report = report


@dataclass
class FeedSpec:
    """Declared shape/dtype (and optional scalar value) of one feed.

    ``shape`` entries may be ints, :class:`~repro.analysis.shapes.Dim`
    objects, or strings naming symbols.  ``value`` (int or symbol name)
    covers tiny integer feeds that parameterize downstream shapes — the DP
    graph's ``natoms`` feed is ``prod_force``'s output row count.
    """

    shape: tuple
    dtype: object = np.float64
    value: object = None


def _mode_name(mode: int) -> str:
    return {0: "out", 1: "copy", 2: "alias"}.get(mode, "?")


class _SlotInfo:
    """Inferred static knowledge about one slot's value."""

    __slots__ = ("shape", "dtype", "value", "parts")

    def __init__(self, shape=None, dtype=None, value=None, parts=None):
        self.shape = shape
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.value = value
        self.parts = parts  # [(shape, dtype), ...] for tuple outputs

    @property
    def opaque(self) -> bool:
        return self.shape is None and self.parts is None

    def describe(self) -> str:
        if self.parts is not None:
            return "(" + ", ".join(
                f"{format_shape(s)} {np.dtype(d).name}" for s, d in self.parts
            ) + ")"
        if self.shape is None:
            return "?"
        return f"{format_shape(self.shape)} {self.dtype.name if self.dtype else '?'}"


def verify_plan(plan, spec=None, check_values: bool = False) -> PlanReport:
    """Verify a compiled :class:`~repro.tfmini.plan.ExecutionPlan`.

    Structural soundness (P101–P105, P109) is always checked.  With a ``spec``
    (feed node → :class:`FeedSpec`, or node *name* → spec) the symbolic
    shape/dtype walk runs too (P106–P108).  ``check_values=True``
    additionally compares every inferred record shape/dtype against the
    concrete arrays left in the plan's slot table by its most recent run —
    the end-to-end agreement check the zoo matrix tests assert.
    """
    from repro.tfmini.plan import _INF, _MODE_ALIAS

    report = PlanReport(n_records=len(plan._records), n_slots=plan._n_slots)
    records = plan._records
    find, death = plan._find, plan._death

    # --- definition sites ------------------------------------------------
    def_pos: list = [None] * plan._n_slots
    for slot, _var in plan._var_slots:
        def_pos[slot] = -1
    for slot, _val in plan._const_slots:
        def_pos[slot] = -1
    for slot in plan._feed_slots:
        if slot >= 0:
            def_pos[slot] = -1
    for r_idx, rec in enumerate(records):
        def_pos[rec.out_slot] = r_idx

    def defined_before(slot: int, r_idx: int) -> bool:
        if not 0 <= slot < plan._n_slots:
            return False
        d = def_pos[slot]
        return d is not None and d < r_idx

    # --- P101 / P102 / P104: per-record reads ---------------------------
    for r_idx, rec in enumerate(records):
        for s in rec.input_slots:
            if not defined_before(s, r_idx):
                report.findings.append(PlanFinding(
                    "P101", f"reads slot {s}, which has no earlier definition",
                    record=r_idx, op=rec.op,
                ))
                continue
            d = death.get(find(s), -1)
            if d != _INF and d < r_idx:
                report.findings.append(PlanFinding(
                    "P102",
                    f"reads slot {s} after its storage group was retired at "
                    f"record {d}",
                    record=r_idx, op=rec.op,
                ))
        if rec.mode == _MODE_ALIAS:
            root = find(rec.out_slot)
            for s in rec.input_slots:
                if 0 <= s < plan._n_slots and find(s) != root:
                    report.findings.append(PlanFinding(
                        "P104",
                        f"view output slot {rec.out_slot} does not share a "
                        f"storage group with input slot {s} — recycling can "
                        f"clobber the live view",
                        record=r_idx, op=rec.op,
                    ))

    # --- P105: fetches pinned -------------------------------------------
    for fs in plan._fetch_slots:
        if not 0 <= fs < plan._n_slots or def_pos[fs] is None:
            report.findings.append(PlanFinding(
                "P101", f"fetch slot {fs} has no definition"))
            continue
        if death.get(find(fs), -1) != _INF:
            report.findings.append(PlanFinding(
                "P105",
                f"fetch slot {fs} is not pinned (storage group dies at "
                f"record {death.get(find(fs), -1)})",
                record=def_pos[fs] if def_pos[fs] >= 0 else None,
            ))

    # --- P103: warm arenas honor the death table ------------------------
    # Address-interval based: the coloring allocator hands out distinct
    # ndarray *views* over shared byte slabs, so object identity proves
    # nothing — two records conflict iff their buffers' byte ranges
    # overlap while the earlier one's storage group is still live.
    for arena in plan._arenas.values():
        live: list = []  # [start, end, owner record, owner death]
        for r_idx, buf in enumerate(arena.buffers):
            if buf is None:
                continue
            # Retire intervals whose owner's storage group has died; a
            # dead owner's bytes are legitimately up for reuse.
            live = [iv for iv in live
                    if iv[3] == _INF or iv[3] >= r_idx]
            for start, end in _buffer_intervals(buf):
                for iv_start, iv_end, prev, d in live:
                    if start < iv_end and iv_start < end:
                        report.findings.append(PlanFinding(
                            "P103",
                            f"buffer bytes of record {prev} handed to record "
                            f"{r_idx} while its storage group lives until "
                            f"{'forever' if d == _INF else f'record {d}'}",
                            record=r_idx, op=records[r_idx].op,
                        ))
                d = death.get(find(records[r_idx].out_slot), -1)
                live.append([start, end, r_idx, d])

    # --- P109: parallel spans are race-free -----------------------------
    _check_spans(plan, report, find, death, def_pos)

    # --- P110: fused elementwise groups are sound -----------------------
    _check_fused(plan, report)

    # --- symbolic shape/dtype walk --------------------------------------
    if spec is not None or check_values:
        if spec is None:
            spec = spec_from_last_run(plan)
        _shape_walk(plan, spec, report, check_values)
    else:
        for r_idx, rec in enumerate(records):
            report.records.append(
                f"[{r_idx:>4}] {rec.op:<18} {_mode_name(rec.mode):<5} "
                f"slots {tuple(rec.input_slots)} -> {rec.out_slot}"
            )
    return report


def _buffer_intervals(buf) -> list:
    """Absolute byte ranges ``[start, end)`` covered by an arena buffer.

    Arena entries are ndarray views into color slabs (or tuples of views
    for multi-output kernels); the absolute addresses are what overlap
    soundness is actually about — object identity proves nothing once
    buffers share slabs.
    """
    arrays = buf if isinstance(buf, tuple) else (buf,)
    out = []
    for a in arrays:
        if isinstance(a, np.ndarray) and a.nbytes:
            start = a.__array_interface__["data"][0]
            out.append((start, start + a.nbytes))
    return out


def _check_spans(plan, report: PlanReport, find, death, def_pos) -> None:
    """Rule P109: the parallel span partition is race-free.

    Under ``span_workers > 1`` every record of a span may execute
    concurrently with every other, so the requirements are stronger than
    sequential liveness: span members must not share a storage group, must
    not read each other's outputs, and their arena buffers must not
    byte-overlap each other (write-write) or the buffers of values any
    member reads (read-write).  A scheduler or allocator bug here would be
    a data race — flagged at compile time instead.
    """
    from repro.tfmini.plan import _MODE_ALIAS

    records = plan._records
    spans = getattr(plan, "_spans", None)
    if spans is None:
        return
    # The spans must tile the tape exactly — a mis-partition would skip or
    # double-execute records.
    pos = 0
    for start, stop in spans:
        if start != pos or stop <= start:
            report.findings.append(PlanFinding(
                "P109",
                f"span ({start}, {stop}) breaks the tape tiling "
                f"(expected start {pos})"))
        pos = stop
    if pos != len(records):
        report.findings.append(PlanFinding(
            "P109",
            f"span partition covers {pos} of {len(records)} records"))

    def backing_record(s: int):
        """The record whose arena buffer actually stores slot ``s``.

        Alias records (views) are walked back to their data input (input 0
        by the view-op convention), so a read of ``reshape(x)`` resolves to
        ``x``'s producing record.  ``None``: the slot is a feed, variable
        or constant — storage outside the arena, unreachable by any arena
        write.  (The full storage *group* is deliberately not used here:
        alias unions are conservative over shape-only inputs, and a later
        group member's buffer is not what this read touches.)
        """
        for _ in range(plan._n_slots + 1):
            j = def_pos[s] if 0 <= s < plan._n_slots else None
            if j is None or j < 0:
                return None
            rec = records[j]
            if rec.mode != _MODE_ALIAS or not rec.input_slots:
                return j
            s = rec.input_slots[0]
        return None

    for start, stop in spans:
        if stop - start <= 1:
            continue
        members = range(start, stop)
        # (1) outputs in distinct storage groups.
        seen_root: dict[int, int] = {}
        for i in members:
            root = find(records[i].out_slot)
            j = seen_root.get(root)
            if j is not None:
                report.findings.append(PlanFinding(
                    "P109",
                    f"records {j} and {i} in span ({start}, {stop}) share a "
                    f"storage group — concurrent execution races",
                    record=i, op=records[i].op,
                ))
            else:
                seen_root[root] = i
        # (2) no member reads another member's output.
        for i in members:
            for s in records[i].input_slots:
                j = def_pos[s] if 0 <= s < plan._n_slots else None
                if j is not None and start <= j < stop and j != i:
                    report.findings.append(PlanFinding(
                        "P109",
                        f"record {i} reads slot {s} produced by record {j} "
                        f"in the same span ({start}, {stop})",
                        record=i, op=records[i].op,
                    ))
        # (3) buffer bytes: writes disjoint from other members' writes and
        # from the storage every member actually reads.
        for arena in plan._arenas.values():
            writes: list = []
            for i in members:
                if records[i].mode == _MODE_ALIAS:
                    continue  # views read; they do not write storage
                buf = arena.buffers[i]
                if buf is None:
                    continue
                writes.extend(
                    (s, e, i) for s, e in _buffer_intervals(buf))
            for a in range(len(writes)):
                s1, e1, i1 = writes[a]
                for b in range(a + 1, len(writes)):
                    s2, e2, i2 = writes[b]
                    if i1 != i2 and s1 < e2 and s2 < e1:
                        report.findings.append(PlanFinding(
                            "P109",
                            f"records {i1} and {i2} in span ({start}, {stop}) "
                            f"write overlapping buffer bytes",
                            record=i2, op=records[i2].op,
                        ))
            for i in members:
                for slot in records[i].input_slots:
                    j = backing_record(slot)
                    if j is None or arena.buffers[j] is None:
                        continue
                    for s, e in _buffer_intervals(arena.buffers[j]):
                        for ws, we, w in writes:
                            if w != i and ws < e and s < we:
                                report.findings.append(PlanFinding(
                                    "P109",
                                    f"record {w} in span ({start}, {stop}) "
                                    f"writes bytes that record {i} reads "
                                    f"(slot {slot}, stored by record {j})",
                                    record=w, op=records[w].op,
                                ))


def _check_fused(plan, report: PlanReport) -> None:
    """Rule P110: fused elementwise records are sound.

    The fusion pass's claims, re-proved independently: every member is a
    fusable destination-passing elementwise record; members read only the
    group's external inputs and earlier members' outputs; exactly one
    member output — the escape, the fused record's own ``out_slot`` —
    is visible outside the group (no outside record reads an internal
    slot, no internal slot is fetched).  The dtype-chain leg of P110 runs
    in the symbolic walk (:func:`_infer_fused`), where per-member dtypes
    are actually derivable.
    """
    from repro.tfmini.plan import _MODE_OUT

    records = plan._records
    fused = [(r_idx, rec, rec.group) for r_idx, rec in enumerate(records)
             if getattr(rec, "group", None) is not None]
    if not fused:
        return
    from repro.tfmini.fusion import FUSABLE_OPS

    all_internal: dict[int, int] = {}  # internal slot -> owning record idx
    for r_idx, rec, group in fused:
        members = group.members
        if tuple(rec.input_slots) != tuple(group.ext_slots):
            report.findings.append(PlanFinding(
                "P110",
                f"fused record inputs {tuple(rec.input_slots)} do not match "
                f"the group's external slots {tuple(group.ext_slots)}",
                record=r_idx, op=rec.op,
            ))
        if not members or members[-1].out_slot != rec.out_slot:
            report.findings.append(PlanFinding(
                "P110",
                f"fused record escape slot {rec.out_slot} is not the last "
                f"member's output",
                record=r_idx, op=rec.op,
            ))
        produced = set(group.ext_slots)
        for k, m in enumerate(members):
            if m.op not in FUSABLE_OPS or m.mode != _MODE_OUT:
                report.findings.append(PlanFinding(
                    "P110",
                    f"fused member {k} ({m.op}) is not a fusable "
                    f"destination-passing elementwise record",
                    record=r_idx, op=rec.op,
                ))
            for s in m.input_slots:
                if s not in produced:
                    report.findings.append(PlanFinding(
                        "P110",
                        f"fused member {k} ({m.op}) reads slot {s}, which no "
                        f"group input or earlier member defines",
                        record=r_idx, op=rec.op,
                    ))
            produced.add(m.out_slot)
        for m in members[:-1]:
            all_internal[m.out_slot] = r_idx

    # Internal member slots must not escape: not read by any record outside
    # their group (the fused record included), not fetched.
    for j, other in enumerate(records):
        for s in other.input_slots:
            r_idx = all_internal.get(s)
            if r_idx is not None and j != r_idx:
                report.findings.append(PlanFinding(
                    "P110",
                    f"record {j} ({other.op}) reads fused-internal slot {s} "
                    f"owned by record {r_idx}",
                    record=j, op=other.op,
                ))
    for fs in plan._fetch_slots:
        r_idx = all_internal.get(fs)
        if r_idx is not None:
            report.findings.append(PlanFinding(
                "P110",
                f"fetch pins fused-internal slot {fs} of record {r_idx} — "
                f"the intermediate never materializes outside the group",
                record=r_idx,
            ))


def plan_metrics(plan) -> dict:
    """Deterministic per-plan metrics for ``repro plan-report``.

    Arena numbers cover every warmed feed-shape signature; a plan that has
    never run reports zero arena bytes (compile-time metrics — record
    count, schedule, span structure — are always present).
    """
    widths = plan.span_widths()
    hist: dict[int, int] = {}
    for w in widths:
        hist[w] = hist.get(w, 0) + 1
    colored = plan.arena_nbytes()
    fifo = plan.fifo_arena_nbytes()
    prefusion = plan.prefusion_arena_nbytes()
    return {
        "records": plan.n_records,
        "schedule": plan.schedule,
        "span_workers": plan.span_workers,
        "backend": plan.backend,
        "spans": plan.stats.spans,
        "max_span_width": plan.stats.max_span_width,
        "span_width_histogram": {str(k): hist[k] for k in sorted(hist)},
        "spans_inlined": plan.stats.spans_inlined,
        "arenas": len(plan.arenas),
        "arena_nbytes_colored": colored,
        "arena_nbytes_fifo": fifo,
        "arena_bytes_saved": fifo - colored,
        "arena_nbytes_prefusion": prefusion,
        "arena_fusion_saved": prefusion - colored,
        "records_fused": plan.records_fused(),
        "fused_chains": plan.fused_chains(),
        "fused_passes_saved": plan.fused_passes_saved(),
        "fused_tiles_run": plan.fused_tiles_run(),
        "fused_scratch_nbytes": plan.fused_scratch_nbytes(),
    }


def _spec_lookup(spec: dict, node):
    entry = spec.get(node)
    if entry is None:
        entry = spec.get(node.name)
    if entry is None:
        return None
    if isinstance(entry, FeedSpec):
        return entry
    shape, dtype = entry  # (shape, dtype) tuple convenience form
    return FeedSpec(shape, dtype)


def _shape_walk(plan, spec, report: PlanReport, check_values: bool) -> None:
    from repro.tfmini.ops import get_op

    ctx = InferContext()
    info: list = [None] * plan._n_slots

    for slot, val in plan._const_slots:
        v = np.asarray(val)
        value = int(v.reshape(-1)[0]) if v.dtype.kind in "iu" and v.size == 1 else None
        info[slot] = _SlotInfo(v.shape, v.dtype, value=value)
    for slot, var in plan._var_slots:
        info[slot] = _SlotInfo(var.value.shape, var.value.dtype)
    for node, slot in zip(plan._feed_nodes, plan._feed_slots):
        if slot < 0:
            continue  # declared feed the fetches never touch
        fs = _spec_lookup(spec, node)
        if fs is None:
            report.findings.append(PlanFinding(
                "P106", f"feed '{node.name}' (slot {slot}) missing from the "
                        f"feed spec"))
            info[slot] = _SlotInfo()
            continue
        dtype = fs.dtype if fs.dtype is not None else node.dtype
        value = fs.value
        if isinstance(value, str):
            value = Dim.symbol(value)
        info[slot] = _SlotInfo(as_shape(fs.shape), dtype, value=value)

    no_rule_noted: set = set()
    for r_idx, rec in enumerate(plan._records):
        site = f"record {r_idx} ({rec.op})"
        ctx.set_site(site)
        ins = [
            info[s] if 0 <= s < plan._n_slots and info[s] is not None
            else _SlotInfo()
            for s in rec.input_slots
        ]

        # P108: float-width mixing outside declared cast points.  Fused
        # records are checked member-by-member in _infer_fused instead —
        # their external inputs legitimately mix widths when the chain
        # contains an internal cast point.
        if rec.op not in ("cast", "cast_like", "fused_elementwise"):
            widths = set()
            shape_only = _SHAPE_ONLY_INPUTS.get(rec.op, ())
            for i, si in enumerate(ins):
                if i in shape_only:
                    continue
                dts = [d for _s, d in si.parts] if si.parts else [si.dtype]
                widths |= {
                    np.dtype(d) for d in dts
                    if d is not None and np.dtype(d).kind == "f"
                }
            if len(widths) > 1:
                report.findings.append(PlanFinding(
                    "P108",
                    "mixes float widths "
                    + "/".join(sorted(d.name for d in widths))
                    + " outside a cast point",
                    record=r_idx, op=rec.op,
                ))

        out = _infer_record(rec, ins, ctx, report, r_idx, no_rule_noted, get_op)
        info[rec.out_slot] = out
        report.records.append(
            f"[{r_idx:>4}] {rec.op:<18} {_mode_name(rec.mode):<5} "
            f"slots {tuple(rec.input_slots)} -> {rec.out_slot}  "
            f"{out.describe()}"
        )

        if check_values:
            _check_against_value(plan, rec, r_idx, out, ctx, report)

    report.notes.extend(ctx.notes)


def _infer_record(rec, ins, ctx, report, r_idx, no_rule_noted, get_op) -> _SlotInfo:
    if rec.op == "fused_elementwise":
        return _infer_fused(rec, ins, ctx, report, r_idx, get_op)
    if rec.op == "item":
        src = ins[0]
        if src.parts is None:
            if not src.opaque:
                report.findings.append(PlanFinding(
                    "P107", "item applied to a non-tuple value",
                    record=r_idx, op=rec.op))
            return _SlotInfo()
        index = rec.attrs["index"]
        if not 0 <= index < len(src.parts):
            report.findings.append(PlanFinding(
                "P107", f"item index {index} out of range "
                        f"({len(src.parts)} parts)", record=r_idx, op=rec.op))
            return _SlotInfo()
        shape, dtype = src.parts[index]
        return _SlotInfo(shape, dtype)

    rule = get_op(rec.op).infer
    if rule is None:
        if rec.op not in no_rule_noted:
            no_rule_noted.add(rec.op)
            ctx.note(f"no shape rule for op '{rec.op}'; outputs left symbolic")
        return _SlotInfo()
    if any(si.opaque or (si.parts is None and si.shape is None) for si in ins):
        return _SlotInfo()  # garbage-in guard; the source already has a note
    shapes = [
        ctx.resolve_shape(si.shape) if si.parts is None else None for si in ins
    ]
    if any(s is None for s in shapes):
        report.findings.append(PlanFinding(
            "P107", "tuple-valued input to a non-item op",
            record=r_idx, op=rec.op))
        return _SlotInfo()
    dtypes = [si.dtype for si in ins]
    ctx.input_values = [si.value for si in ins]
    try:
        res = rule(shapes, dtypes, rec.attrs, ctx)
    except ShapeError as exc:
        report.findings.append(PlanFinding(
            "P107", str(exc), record=r_idx, op=rec.op))
        return _SlotInfo()
    finally:
        ctx.input_values = []
    if isinstance(res, list):
        parts = [(ctx.resolve_shape(s), np.dtype(d)) for s, d in res]
        return _SlotInfo(parts=parts)
    shape, dtype = res
    return _SlotInfo(ctx.resolve_shape(shape), dtype)


def _infer_fused(rec, ins, ctx, report, r_idx, get_op) -> _SlotInfo:
    """Symbolic walk through a fused elementwise group (P110 dtype chain).

    Members are re-inferred one by one with the group's external inputs as
    the seed, so the walk sees exactly the dataflow the blocked interpreter
    executes.  Three things are checked per member: an infer rule exists
    (every fusable op ships one — a member without one is not a legitimate
    fusion candidate), the member does not mix float widths unless it *is*
    a declared cast point, and the inferred member dtype agrees with the
    warm run's recorded metadata when the group has run.  All three report
    as P110: they are fusion-soundness properties, not graph-authoring
    bugs.
    """
    group = getattr(rec, "group", None)
    if group is None:
        report.findings.append(PlanFinding(
            "P110", "fused_elementwise record carries no group",
            record=r_idx, op=rec.op))
        return _SlotInfo()

    local: dict = dict(zip(group.ext_slots, ins))
    meta = group.last_meta if group.last_meta else None
    if meta is not None and len(meta) != len(group.members):
        meta = None
    out_info = _SlotInfo()
    for k, m in enumerate(group.members):
        site = f"record {r_idx} (fused[{k}] {m.op})"
        ctx.set_site(site)
        ins_m = [local.get(s, _SlotInfo()) for s in m.input_slots]

        if m.op not in ("cast", "cast_like"):
            widths = {
                np.dtype(si.dtype) for si in ins_m
                if si.dtype is not None and np.dtype(si.dtype).kind == "f"
            }
            if len(widths) > 1:
                report.findings.append(PlanFinding(
                    "P110",
                    f"fused member {k} ({m.op}) mixes float widths "
                    + "/".join(sorted(d.name for d in widths))
                    + " without a declared cast point",
                    record=r_idx, op=m.op,
                ))

        rule = get_op(m.op).infer
        if rule is None:
            report.findings.append(PlanFinding(
                "P110",
                f"fused member {k} ({m.op}) has no shape/dtype rule — "
                f"not a sound fusion candidate",
                record=r_idx, op=m.op,
            ))
            local[m.out_slot] = _SlotInfo()
            continue
        if any(si.opaque or (si.parts is not None) or si.shape is None
               for si in ins_m):
            local[m.out_slot] = _SlotInfo()
            continue
        shapes = [ctx.resolve_shape(si.shape) for si in ins_m]
        dtypes = [si.dtype for si in ins_m]
        ctx.input_values = [si.value for si in ins_m]
        try:
            res = rule(shapes, dtypes, m.attrs, ctx)
        except ShapeError as exc:
            report.findings.append(PlanFinding(
                "P107", str(exc), record=r_idx, op=m.op))
            local[m.out_slot] = _SlotInfo()
            continue
        finally:
            ctx.input_values = []
        shape, dtype = res
        si = _SlotInfo(ctx.resolve_shape(shape), dtype)
        if meta is not None and dtype is not None:
            _mshape, mdtype = meta[k]
            if np.dtype(dtype) != np.dtype(mdtype):
                report.findings.append(PlanFinding(
                    "P110",
                    f"fused member {k} ({m.op}) infers dtype "
                    f"{np.dtype(dtype).name} but the warm run recorded "
                    f"{np.dtype(mdtype).name}",
                    record=r_idx, op=m.op,
                ))
        local[m.out_slot] = si
        if m.out_slot == group.out_slot:
            out_info = si
    return out_info


def _check_against_value(plan, rec, r_idx, out, ctx, report) -> None:
    """Compare the inferred shape/dtype with the last run's concrete value."""
    val = plan._values[rec.out_slot]
    pairs = []
    if isinstance(val, np.ndarray) and out.shape is not None:
        pairs.append((out.shape, out.dtype, val))
    elif isinstance(val, tuple) and out.parts is not None:
        for (shape, dtype), v in zip(out.parts, val):
            if isinstance(v, np.ndarray):
                pairs.append((shape, dtype, v))
    for shape, dtype, v in pairs:
        ctx.set_site(f"record {r_idx} ({rec.op}) vs last run")
        try:
            ctx.unify_shapes(ctx.resolve_shape(shape), v.shape, "runtime shape")
        except ShapeError as exc:
            report.findings.append(PlanFinding(
                "P107", str(exc), record=r_idx, op=rec.op))
        if dtype is not None and np.dtype(dtype) != v.dtype:
            report.findings.append(PlanFinding(
                "P108",
                f"inferred dtype {np.dtype(dtype).name} but the last run "
                f"produced {v.dtype.name}",
                record=r_idx, op=rec.op,
            ))


def spec_from_last_run(plan) -> dict:
    """Concrete feed spec recovered from the plan's most recent run."""
    spec: dict = {}
    for node, slot in zip(plan._feed_nodes, plan._feed_slots):
        if slot < 0:
            continue
        v = plan._values[slot]
        if not isinstance(v, np.ndarray):
            raise ValueError(
                f"feed '{node.name}' has no staged value — run the plan "
                f"before verifying against its last run"
            )
        fs = FeedSpec(v.shape, v.dtype)
        if v.dtype.kind in "iu" and v.size == 1:
            fs.value = int(v.reshape(-1)[0])
        spec[node] = fs
    return spec


# ---------------------------------------------------------------------------
# feed specs for the DP graphs
# ---------------------------------------------------------------------------


def dp_feed_spec(model) -> dict:
    """Symbolic feed signature of a :class:`repro.dp.model.DeepPot` graph.

    Row counts are per-type symbols ``n_t{t}``; the environment-derivative
    tensors cover all fed rows, so their leading extent is the *sum* of the
    per-type symbols.  ``natoms`` (the scatter row count of ``prod_force``,
    which covers ghost rows in decomposed frames) is an independent value
    symbol.
    """
    cfg = model.config
    nnei = int(cfg.nnei)
    spec: dict = {}
    rows = 0
    for t, ph in enumerate(model.ph_env):
        spec[ph] = FeedSpec((Dim.symbol(f"n_t{t}"), nnei, 4), np.float64)
        rows = rows + Dim.symbol(f"n_t{t}")
    spec[model.ph_em_deriv] = FeedSpec((rows, nnei, 4, 3), np.float64)
    spec[model.ph_rij] = FeedSpec((rows, nnei, 3), np.float64)
    spec[model.ph_nlist] = FeedSpec((rows, nnei), np.int64)
    spec[model.ph_atom_idx] = FeedSpec((rows,), np.int64)
    spec[model.ph_natoms] = FeedSpec((1,), np.int64, value="natoms")
    return spec


def train_feed_spec(trainer) -> dict:
    """Symbolic feed signature of a :class:`repro.dp.train.Trainer` graph."""
    spec = dp_feed_spec(trainer.model)
    spec[trainer.ph_e_label] = FeedSpec((), np.float64)
    spec[trainer.ph_f_label] = FeedSpec((Dim.symbol("natoms"), 3), np.float64)
    spec[trainer.ph_inv_natoms] = FeedSpec((), np.float64)
    spec[trainer.ph_pref_e] = FeedSpec((), np.float64)
    spec[trainer.ph_pref_f] = FeedSpec((), np.float64)
    if trainer.config.use_virial:
        spec[trainer.ph_v_label] = FeedSpec((3, 3), np.float64)
        spec[trainer.ph_pref_v] = FeedSpec((), np.float64)
    return spec


# ---------------------------------------------------------------------------
# zoo-wide verification (the `repro check-plans` entry point)
# ---------------------------------------------------------------------------


def check_all_plans(
    precisions=("double", "mixed"),
    include_train: bool = True,
    include_serving: bool = True,
    report: bool = False,
    plan_backend=None,
) -> list[dict]:
    """Compile and verify evaluate/train/serving plans across the zoo matrix.

    Uses *untrained* models with the zoo configurations — plan structure
    does not depend on the weights, and this keeps the check seconds-fast
    for CI.  Evaluate plans additionally get a warm run and a runtime-
    agreement pass (inferred shapes vs the arrays the tape produced).

    Returns one entry per verified plan:
    ``{"plan": "water/double/evaluate", "report": PlanReport, "records": n}``.

    ``report=True`` adds a ``"metrics"`` entry per plan
    (:func:`plan_metrics`: schedule, span structure, colored-vs-FIFO arena
    bytes, fusion counters) and warms the train/serving plans too (one
    step / one evaluation), so arena footprints are measured, not zero.

    ``plan_backend`` selects the kernel backend for every compiled plan
    (``None`` keeps each engine's default resolution: the
    ``REPRO_PLAN_BACKEND`` environment variable, then ``"numpy"``).
    """
    from repro.analysis.structures import fcc_lattice, water_box
    from repro.dp.batch import BatchedEvaluator
    from repro.dp.data import label_frames
    from repro.dp.model import DeepPot
    from repro.dp.train import TrainConfig, Trainer
    from repro.md.neighbor import neighbor_pairs
    from repro.oracles import FlexibleWater, SuttonChenEAM
    from repro.zoo import copper_config, water_config

    # Smallest boxes whose edges satisfy minimum-image for the zoo cutoffs.
    species = {
        "water": (water_config, lambda: water_box((3, 3, 3), seed=0),
                  lambda: FlexibleWater(cutoff=4.0)),
        "copper": (copper_config, lambda: fcc_lattice((3, 3, 3)),
                   lambda: SuttonChenEAM(r_on=4.0, cutoff=5.0)),
    }
    results: list[dict] = []

    def add(label: str, plan, spec, check_values: bool = False) -> None:
        entry = {
            "plan": label,
            "report": verify_plan(plan, spec=spec, check_values=check_values),
            "records": plan.n_records,
        }
        if report:
            entry["metrics"] = plan_metrics(plan)
        results.append(entry)

    for name, (config_fn, system_fn, oracle_fn) in species.items():
        system = system_fn()
        for precision in precisions:
            model = DeepPot(config_fn(precision))
            engine = BatchedEvaluator(model, plan_backend=plan_backend)
            pi, pj = neighbor_pairs(system, model.config.rcut)
            engine.evaluate_batch([system], [(pi, pj)])  # warm the arena
            add(f"{name}/{precision}/evaluate", engine.plan,
                dp_feed_spec(model), check_values=True)

            if include_train and precision == "double":
                dataset = label_frames([system.copy()], oracle_fn())
                dataset.apply_stats(model)
                trainer = Trainer(
                    model, dataset, TrainConfig(n_steps=1, log_every=10),
                    plan_backend=plan_backend,
                )
                if report:
                    trainer.step()  # warm: measured (not zero) arena bytes
                add(f"{name}/{precision}/train", trainer.plan,
                    train_feed_spec(trainer))

            if include_serving:
                from repro.serving import InferenceServer

                server = InferenceServer(
                    {name: model}, autostart=False, plan_backend=plan_backend
                )
                try:
                    if report:
                        server._engines[name].evaluate_batch(
                            [system], [(pi, pj)])  # warm the serving arena
                    add(f"{name}/{precision}/serving",
                        server._engines[name].plan, dp_feed_spec(model))
                finally:
                    server.stop()
    return results
