"""Instrumented graph executor for tfmini.

``Session.run`` evaluates fetches in topological order with per-run value
caching.  When profiling is enabled it records, per operator *name*, the
cumulative wall time, call count, FLOPs and bytes touched — the measurements
behind the paper's Fig 3 operator breakdown and the Table 3 / Sec 7.1.2
speedups.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.tfmini.graph import Node, Variable, topo_sort
from repro.tfmini.ops import get_op, op_category, op_flops


@dataclass
class OpStats:
    """Accumulated per-operator statistics across ``Session.run`` calls."""

    seconds: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    calls: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    flops: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, op: str, seconds: float, flops: int, nbytes: int) -> None:
        self.seconds[op] += seconds
        self.calls[op] += 1
        self.flops[op] += flops
        self.bytes[op] += nbytes

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def total_flops(self) -> int:
        return sum(self.flops.values())

    def by_category(self) -> dict[str, float]:
        """Wall time grouped into the Fig-3 legend categories."""
        out: dict[str, float] = defaultdict(float)
        for op, sec in self.seconds.items():
            out[op_category(op)] += sec
        return dict(out)

    def category_percentages(self) -> dict[str, float]:
        total = self.total_seconds()
        if total <= 0:
            return {}
        return {k: 100.0 * v / total for k, v in self.by_category().items()}

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()
        self.flops.clear()
        self.bytes.clear()


def _result_nbytes(value) -> int:
    if isinstance(value, tuple):
        return sum(v.nbytes for v in value if isinstance(v, np.ndarray))
    if isinstance(value, np.ndarray):
        return value.nbytes
    return 0


class Session:
    """Evaluates graph fetches with feed substitution and optional profiling.

    ``run`` re-derives everything per call (topological order, per-node dict
    dispatch, fresh output allocations) and is the *reference oracle* for
    compiled execution plans (:mod:`repro.tfmini.plan`), which pay those
    fixed costs once and must match it bitwise.  Hot loops should compile a
    plan (:meth:`compile`); ``run`` stays for one-off evaluations and
    differential testing.
    """

    def __init__(self, profile: bool = False):
        self.profile = profile
        self.stats = OpStats()

    def compile(
        self,
        fetches: Sequence[Node] | Node,
        feed_nodes: Sequence[Node],
        copy_fetches: bool = True,
    ):
        """Compile ``fetches`` into an :class:`~repro.tfmini.plan.
        ExecutionPlan`; pass ``self`` to its ``run`` for profiling parity."""
        from repro.tfmini.plan import compile_plan

        return compile_plan(fetches, feed_nodes, copy_fetches=copy_fetches)

    def run(
        self,
        fetches: Sequence[Node] | Node,
        feeds: Optional[dict[Node, np.ndarray]] = None,
    ):
        """Evaluate ``fetches``; returns a single array or a list of arrays.

        ``feeds`` maps placeholder nodes to concrete numpy arrays.
        """
        single = isinstance(fetches, Node)
        fetch_list: list[Node] = [fetches] if single else list(fetches)
        # Feeds from hot paths are already ndarrays — don't re-wrap them.
        feed_vals = (
            {
                id(k): (v if type(v) is np.ndarray else np.asarray(v))
                for k, v in feeds.items()
            }
            if feeds
            else {}
        )

        values: dict[int, np.ndarray] = {}
        order = topo_sort(fetch_list)
        if self.profile:
            self._run_profiled(order, feed_vals, values)
        else:
            self._run_plain(order, feed_vals, values)

        results = [values[id(f)] for f in fetch_list]
        return results[0] if single else results

    def _run_plain(self, order, feed_vals, values) -> None:
        # The oracle's fast loop: no timing, no FLOP/byte accounting.
        for node in order:
            nid = id(node)
            if nid in feed_vals:
                values[nid] = feed_vals[nid]
                continue
            if isinstance(node, Variable):
                values[nid] = node.value
                continue
            if node.op == "constant":
                values[nid] = node.attrs["value"]
                continue
            if node.op == "placeholder":
                raise KeyError(f"placeholder '{node.name}' was not fed")
            values[nid] = get_op(node.op).forward(
                [values[id(i)] for i in node.inputs], node.attrs
            )

    def _run_profiled(self, order, feed_vals, values) -> None:
        for node in order:
            nid = id(node)
            if nid in feed_vals:
                values[nid] = feed_vals[nid]
                continue
            if isinstance(node, Variable):
                values[nid] = node.value
                continue
            if node.op == "constant":
                values[nid] = node.attrs["value"]
                continue
            if node.op == "placeholder":
                raise KeyError(f"placeholder '{node.name}' was not fed")
            opdef = get_op(node.op)
            inputs = [values[id(i)] for i in node.inputs]
            t0 = time.perf_counter()
            out = opdef.forward(inputs, node.attrs)
            dt = time.perf_counter() - t0
            self.stats.record(
                node.op, dt, op_flops(node, inputs, out), _result_nbytes(out)
            )
            values[nid] = out
