"""Lennard-Jones pair potential — the empirical-force-field (EFF) baseline.

The paper contrasts DP with EFF-based MD (Sec 3.1); LJ is the canonical EFF
and also serves as a fast, exactly-solvable potential for integrator and
neighbor-list tests.  Energies are cut-and-shifted so the potential is
continuous at the cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.potential import Potential, PotentialResult, pair_virial
from repro.md.system import System


@dataclass
class LennardJones(Potential):
    """LJ with per-type-pair parameters.

    ``epsilon`` and ``sigma`` are (ntypes, ntypes) arrays (eV, Å); scalars are
    broadcast for single-type systems.
    """

    epsilon: np.ndarray
    sigma: np.ndarray
    cutoff: float

    def __post_init__(self):
        self.epsilon = np.atleast_2d(np.asarray(self.epsilon, dtype=np.float64))
        self.sigma = np.atleast_2d(np.asarray(self.sigma, dtype=np.float64))
        if self.epsilon.shape != self.sigma.shape:
            raise ValueError("epsilon and sigma must have matching shapes")
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")

    def compute(
        self, system: System, pair_i: np.ndarray, pair_j: np.ndarray
    ) -> PotentialResult:
        n = system.n_atoms
        forces = np.zeros((n, 3))
        if pair_i.size == 0:
            return PotentialResult(0.0, forces, np.zeros((3, 3)))

        disp = system.box.minimum_image(
            system.positions[pair_j] - system.positions[pair_i]
        )
        r2 = np.einsum("ij,ij->i", disp, disp)
        within = r2 <= self.cutoff * self.cutoff
        pair_i, pair_j, disp, r2 = pair_i[within], pair_j[within], disp[within], r2[within]

        eps = self.epsilon[system.types[pair_i], system.types[pair_j]]
        sig = self.sigma[system.types[pair_i], system.types[pair_j]]

        inv_r2 = sig * sig / r2
        inv_r6 = inv_r2**3
        inv_r12 = inv_r6**2
        # Shift so e(r_c) = 0 for each type pair.
        src = (sig / self.cutoff) ** 2
        shift = 4.0 * (src**6 - src**3)
        e_pair = 4.0 * eps * (inv_r12 - inv_r6) - eps * shift
        energy = float(e_pair.sum())

        # f_i = -dE/dr_i ; dE/dr = (-48 e12 + 24 e6)/r along r̂.
        f_scalar = (48.0 * inv_r12 - 24.0 * inv_r6) * eps / r2  # multiplies -disp
        fij = -f_scalar[:, None] * disp  # force on atom i from j
        np.add.at(forces, pair_i, fij)
        np.add.at(forces, pair_j, -fij)
        virial = pair_virial(disp, fij)

        atom_e = np.zeros(n)
        np.add.at(atom_e, pair_i, 0.5 * e_pair)
        np.add.at(atom_e, pair_j, 0.5 * e_pair)
        return PotentialResult(energy, forces, virial, atom_energies=atom_e)


def argon() -> LennardJones:
    """LJ argon (ε=0.0104 eV, σ=3.4 Å) — a standard test fluid."""
    return LennardJones(epsilon=0.0104, sigma=3.4, cutoff=8.5)
