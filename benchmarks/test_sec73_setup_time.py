"""Sec 7.3 — setup-time optimization and sustained performance.

Paper: baseline initialisation (rank-0 structure build + scatter; every rank
reads the model file) takes >240 s for 113M-atom copper on 4,560 nodes;
the optimized scheme (replicated local build, read-once + broadcast model)
brings it under 5 s, lifting sustained performance to 85.4 PFLOPS (within
1% of peak MD-loop performance).

Here both code paths run on simulated ranks with real work and accounted
traffic; the model also projects the Summit-scale setup ratio.
"""

import pytest

from benchmarks.conftest import print_header
from repro.analysis.structures import water_box
from repro.dp.serialize import save_model
from repro.parallel import SimComm, baseline_setup, optimized_setup

N_RANKS = 8
GRID = (2, 2, 2)
RESULTS = {}


@pytest.fixture(scope="module")
def model_file(zoo_water_model, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("zoo") / "model.npz")
    save_model(zoo_water_model, path)
    return path


def build():
    return water_box((6, 6, 6), seed=0)


def test_baseline_setup(benchmark, model_file):
    def run():
        comm = SimComm(N_RANKS)
        *_, report = baseline_setup(build, model_file, comm, GRID)
        return report

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    RESULTS["baseline"] = report


def test_optimized_setup(benchmark, model_file):
    def run():
        comm = SimComm(N_RANKS)
        *_, report = optimized_setup(lambda rank: build(), model_file, comm, GRID)
        return report

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    RESULTS["optimized"] = report


def test_zz_report(benchmark):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert {"baseline", "optimized"} <= RESULTS.keys()
    base, opt = RESULTS["baseline"], RESULTS["optimized"]

    print_header("Sec 7.3 — setup staging (8 simulated ranks)")
    print(f"{'scheme':<12} {'total':>9} {'structure':>10} {'model':>9} "
          f"{'p2p bytes':>12} {'model reads':>12}")
    for name, r in (("baseline", base), ("optimized", opt)):
        print(f"{name:<12} {r.seconds:>8.3f}s {r.structure_seconds:>9.3f}s "
              f"{r.model_seconds:>8.3f}s {r.p2p_bytes:>12,} {r.model_reads:>12}")
    print(f"\nmodel-loading speedup: "
          f"{base.model_seconds / max(opt.model_seconds, 1e-12):.1f}x")
    print("paper at 4,560 nodes: >240 s -> <5 s (>48x)")

    # Shape assertions: the optimized path eliminates the scatter traffic and
    # the per-rank model reads.
    assert opt.p2p_bytes == 0
    assert base.p2p_bytes > 0
    assert opt.model_reads == 1
    assert base.model_reads == N_RANKS
    # and it is not slower overall
    assert opt.seconds < base.seconds * 1.2


def test_sustained_performance_model(benchmark):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The Sec 7.3 sustained-PFLOPS arithmetic at Summit scale: 5,000 steps
    of 113M-atom copper with <5 s setup sustains ~99% of loop PFLOPS."""
    from repro.perfmodel import COPPER_SPEC, strong_scaling

    pt = strong_scaling(COPPER_SPEC, 113_246_208, [4560])[0]
    loop_seconds = 5000 * pt.t_step
    sustained_optimized = pt.pflops * loop_seconds / (loop_seconds + 5.0)
    sustained_baseline = pt.pflops * loop_seconds / (loop_seconds + 240.0)
    print_header("Sec 7.3 — sustained performance at Summit scale (model)")
    print(f"loop: {loop_seconds:.0f} s for 5,000 steps; peak {pt.pflops:.1f} PFLOPS")
    print(f"sustained with <5 s setup:   {sustained_optimized:.1f} PFLOPS "
          f"(paper: 85.4 vs 86.2 peak)")
    print(f"sustained with 240 s setup:  {sustained_baseline:.1f} PFLOPS")
    # optimized setup costs ~1% of sustained performance (paper: 85.4/86.2);
    # the baseline's 240 s setup would cost tens of percent of a 5 ps run.
    assert sustained_optimized / pt.pflops > 0.95
    assert sustained_baseline / pt.pflops < 0.75
