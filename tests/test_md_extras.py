"""Tests for the extended MD features: FIRE minimizer, Nosé-Hoover, the
Berendsen barostat, trajectory I/O, and dynamics analysis."""

import numpy as np
import pytest

from repro.analysis.dynamics import (
    UnwrappedTrajectory,
    diffusion_coefficient,
    mean_squared_displacement,
    velocity_autocorrelation,
)
from repro.analysis.structures import _FCC_BASIS, fcc_lattice, water_box
from repro.md import (
    BerendsenBarostat,
    NoseHoover,
    Simulation,
    System,
    boltzmann_velocities,
    fire_minimize,
    fitted_neighbor_list,
    read_xyz,
    write_lammps_data,
    write_xyz,
)
from repro.md.box import Box
from repro.md.lj import LennardJones
from repro.oracles import SuttonChenEAM


def short_argon():
    return LennardJones(epsilon=0.0104, sigma=3.4, cutoff=5.5)


def lj_fcc(n=3, a_lat=5.26, temperature=0.0, seed=0):
    grid = np.stack(
        np.meshgrid(*[np.arange(n)] * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3)
    pos = (grid[:, None, :] + _FCC_BASIS[None]).reshape(-1, 3) * a_lat
    sys = System(
        box=Box([n * a_lat] * 3),
        positions=pos,
        types=np.zeros(len(pos), dtype=np.int64),
        masses=np.array([39.948]),
    )
    if temperature > 0:
        boltzmann_velocities(sys, temperature, seed=seed)
    return sys


class TestFire:
    def test_relaxes_rattled_crystal(self):
        sys = lj_fcc()
        rng = np.random.default_rng(1)
        sys.positions += rng.normal(scale=0.15, size=sys.positions.shape)
        pot = short_argon()
        e0 = pot.compute_dense(sys).energy
        result = fire_minimize(sys, pot, force_tol=1e-3, max_steps=600)
        assert result.converged
        assert result.energy < e0
        assert result.max_force < 1e-3

    def test_energy_monotone_overall(self):
        sys = lj_fcc()
        rng = np.random.default_rng(2)
        sys.positions += rng.normal(scale=0.1, size=sys.positions.shape)
        result = fire_minimize(sys, short_argon(), force_tol=1e-4, max_steps=300)
        hist = np.array(result.energy_history)
        assert hist[-1] <= hist[0]

    def test_already_minimal_converges_immediately(self):
        sys = lj_fcc()
        # perfect fcc at the LJ-argon equilibrium spacing is near a minimum
        result = fire_minimize(sys, short_argon(), force_tol=1e-2, max_steps=50)
        assert result.converged
        assert result.n_iterations <= 2

    def test_eam_nanocrystal_boundaries_relax(self):
        from repro.analysis.structures import nanocrystal_fcc

        sys = nanocrystal_fcc(box_length=22.0, n_grains=2, seed=4)
        pot = SuttonChenEAM(r_on=4.0, cutoff=5.0)
        e0 = pot.compute_dense(sys).energy
        result = fire_minimize(sys, pot, force_tol=0.05, max_steps=150)
        assert result.energy < e0  # boundary atoms relax downhill


class TestNoseHoover:
    def test_reaches_and_holds_target_temperature(self):
        sys = lj_fcc(temperature=20.0, seed=3)
        sim = Simulation(
            sys,
            short_argon(),
            dt=0.002,
            integrator=NoseHoover(temperature=60.0, tau=0.1),
            thermo_every=10,
        )
        sim.run(800)
        temps = sim.thermo.column("temperature")[-20:]
        assert abs(temps.mean() - 60.0) < 10.0

    def test_xi_relaxes_near_zero_at_equilibrium(self):
        sys = lj_fcc(temperature=50.0, seed=4)
        nh = NoseHoover(temperature=50.0, tau=0.1)
        sim = Simulation(sys, short_argon(), dt=0.002, integrator=nh)
        sim.run(300)
        assert abs(nh.xi) < 50.0  # bounded, no runaway


class TestBarostat:
    def test_compresses_under_positive_target_error(self):
        """A hot ideal-gas-like system at high pressure expands the box."""
        sys = lj_fcc(temperature=300.0, seed=5)
        pot = short_argon()
        res = pot.compute_dense(sys)
        barostat = BerendsenBarostat(pressure=1.0, tau=0.5)
        v0 = sys.box.volume
        for _ in range(10):
            res = pot.compute_dense(sys)
            barostat.apply(sys, res.virial, dt=0.002)
        assert sys.box.volume > v0  # P >> 1 bar -> expand toward target

    def test_scale_clamped(self):
        sys = lj_fcc(temperature=2000.0, seed=6)
        pot = short_argon()
        res = pot.compute_dense(sys)
        barostat = BerendsenBarostat(pressure=1.0, tau=1e-6, max_scale=0.01)
        mu = barostat.apply(sys, res.virial, dt=0.002)
        assert 0.99 <= mu <= 1.01

    def test_equilibrium_stays_put(self):
        sys = lj_fcc()
        pot = short_argon()
        res = pot.compute_dense(sys)
        from repro.md.thermo import compute_pressure

        p_now = compute_pressure(sys, res.virial)
        barostat = BerendsenBarostat(pressure=p_now, tau=0.5)
        v0 = sys.box.volume
        barostat.apply(sys, res.virial, dt=0.002)
        assert sys.box.volume == pytest.approx(v0, rel=1e-9)


class TestDumpIO:
    def test_xyz_roundtrip(self, tmp_path):
        sys = water_box((2, 2, 2), seed=0)
        path = str(tmp_path / "frame.xyz")
        write_xyz(sys, path, comment="test")
        frames = read_xyz(path)
        assert len(frames) == 1
        got = frames[0]
        np.testing.assert_allclose(got.positions, sys.positions, atol=1e-9)
        np.testing.assert_array_equal(got.types, sys.types)
        np.testing.assert_allclose(got.box.lengths, sys.box.lengths)

    def test_xyz_multi_frame_append(self, tmp_path):
        sys = water_box((2, 2, 2), seed=0)
        path = str(tmp_path / "traj.xyz")
        write_xyz(sys, path)
        sys2 = sys.copy()
        sys2.positions += 0.1
        sys2.wrap()
        write_xyz(sys2, path, append=True)
        frames = read_xyz(path)
        assert len(frames) == 2
        assert not np.allclose(frames[0].positions, frames[1].positions)

    def test_lammps_data_contents(self, tmp_path):
        sys = fcc_lattice((2, 2, 2))
        boltzmann_velocities(sys, 100.0, seed=1)
        path = str(tmp_path / "cu.data")
        write_lammps_data(sys, path)
        text = open(path).read()
        assert f"{sys.n_atoms} atoms" in text
        assert "1 atom types" in text
        assert "Masses" in text
        assert "Velocities" in text
        assert "Atoms # atomic" in text


class TestDynamics:
    def test_unwrap_removes_jumps(self):
        box = Box([10.0] * 3)
        traj = UnwrappedTrajectory(box)
        # atom walks across the boundary: 9.5 -> 0.3 is a +0.8 move
        traj.add(np.array([[9.5, 5.0, 5.0]]))
        traj.add(np.array([[0.3, 5.0, 5.0]]))
        arr = traj.as_array()
        assert arr[1, 0, 0] == pytest.approx(10.3)

    def test_msd_of_ballistic_motion_quadratic(self):
        # constant velocity: MSD(t) = v^2 t^2
        frames = np.array([[[0.1 * k, 0, 0]] for k in range(10)])
        msd = mean_squared_displacement(frames)
        t = np.arange(10)
        np.testing.assert_allclose(msd, (0.1 * t) ** 2, atol=1e-12)

    def test_diffusion_coefficient_of_linear_msd(self):
        # MSD = 6 D t exactly
        d_true = 0.25
        dt = 0.1
        t = np.arange(50) * dt
        msd = 6 * d_true * t
        assert diffusion_coefficient(msd, dt) == pytest.approx(d_true)

    def test_diffusion_needs_enough_frames(self):
        with pytest.raises(ValueError, match="few frames"):
            diffusion_coefficient(np.array([0.0, 1.0]), 0.1, fit_from=0.9)

    def test_vacf_starts_at_one_and_decays_for_liquid(self):
        sys = lj_fcc(n=3, temperature=150.0, seed=7)
        sim = Simulation(sys, short_argon(), dt=0.002)
        vels = [sys.velocities.copy()]

        def grab(s):
            vels.append(s.system.velocities.copy())

        sim.run(40, callback=grab)
        vacf = velocity_autocorrelation(vels)
        assert vacf[0] == pytest.approx(1.0)
        assert vacf[-1] < 0.95  # decorrelates

    def test_solid_diffusion_is_small(self):
        """Cold LJ crystal: atoms vibrate but do not diffuse."""
        sys = lj_fcc(temperature=20.0, seed=8)
        sim = Simulation(sys, short_argon(), dt=0.002)
        traj = UnwrappedTrajectory(sys.box)
        traj.add(sys.positions)

        def grab(s):
            if s.step_count % 5 == 0:
                traj.add(s.system.positions)

        sim.run(100, callback=grab)
        msd = mean_squared_displacement(traj.as_array())
        d = diffusion_coefficient(msd, 5 * 0.002)
        assert abs(d) < 0.05  # Å²/ps — essentially zero


class TestSummitEstimate:
    def test_estimate_from_real_run(self):
        from repro.dp.model import DeepPot, DPConfig
        from repro.parallel import DistributedSimulation
        from repro.perfmodel.estimate import estimate_summit_step

        model = DeepPot(DPConfig.tiny())
        sys = water_box((4, 4, 4), seed=0)
        boltzmann_velocities(sys, 300.0, seed=1)
        dist = DistributedSimulation(sys, model, grid=(2, 2, 1), dt=0.0005, skin=1.0)
        dist.run(4)
        est = estimate_summit_step(dist)
        assert est.t_step > 0
        assert est.atoms_per_rank_max >= 48
        assert est.ghosts_per_rank_max > 0
        # latency floor dominates at 48 atoms/rank — the Table 4 small-count
        # regime, observed from a *real* decomposition
        assert est.t_fixed > est.t_compute
