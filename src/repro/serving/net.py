"""Out-of-process serving: the socket front-end over the inference server.

This is the ROADMAP's "one coalescing seam from socket to simulation": a
:class:`ServingDaemon` exposes an in-process
:class:`~repro.serving.worker.InferenceServer` over a local TCP socket
speaking the :mod:`repro.serving.protocol` frame protocol, and a
:class:`SocketClient` mirrors :class:`~repro.serving.client.
InferenceClient` over that wire.  External OS processes, interactive
clients and long-running MD drivers (through :class:`~repro.dp.backend.
ServingForceBackend`) all land in the SAME request queue, so their frames
coalesce into one set of served batches.

Daemon lifecycle::

    accept ──> per-connection reader ──> RequestQueue ──> worker pool
                     │  (decode SUBMIT,                     │
                     │   server.submit)                     │ evaluate_batch
                     │                                      v
    client <── per-connection writer <── future done-callbacks
               (encode RESULT/ERROR)

One acceptor thread; per connection, one reader thread (decodes frames,
submits into the queue — the same admission path in-process clients use,
including quotas and the result cache) and one writer thread (drains an
outbox fed by future done-callbacks, so array encoding never runs on a
worker thread).  Graceful drain: :meth:`ServingDaemon.stop` refuses new
connections and submissions, lets queued requests complete, flushes every
outbox, then closes — conservation (submitted == completed + failed +
cancelled) holds across the wire, which ``repro serve`` asserts on
SIGTERM.

Numerical contract: arrays cross the wire as raw dtype/shape-tagged bytes
(:mod:`repro.serving.protocol`), so a served result is **bitwise
identical** to a direct in-process evaluation of the same frame — the
socket adds no representational noise, and a trajectory driven through a
``SocketClient`` equals the in-process trajectory exactly
(``tests/test_serving_net.py``).
"""

from __future__ import annotations

import queue as _queuemod
import socket
import threading
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeout
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.serving import protocol as proto
from repro.serving.protocol import MsgType, ProtocolError
from repro.serving.queue import (
    QueueFull,
    QuotaExceeded,
    ServerClosed,
    TransientEvalError,
    WorkerCrashed,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.md.potential import PotentialResult
    from repro.md.system import System
    from repro.serving.faults import FaultPlan
    from repro.serving.worker import InferenceServer


#: outbox sentinel: flush what is queued, send GOODBYE, close the socket
_FLUSH_AND_CLOSE = object()


class _Connection:
    """One client connection: reader + writer threads and their shared
    bookkeeping.

    The reader owns the receive side of the socket; the writer owns the
    send side (so RESULT frames from worker done-callbacks never interleave
    bytes with each other).  ``pending`` maps request ids to the server-side
    futures still in flight for this connection — dropped connections
    cancel them so abandoned requests free their queue slots exactly like
    abandoned in-process deadlines.
    """

    def __init__(self, daemon: "ServingDaemon", sock: socket.socket, cid: int):
        self.daemon = daemon
        self.sock = sock
        self.cid = cid
        self.client_id = f"conn-{cid}"
        self.outbox: _queuemod.Queue = _queuemod.Queue()
        self.pending: dict[int, Future] = {}
        self._lock = threading.Lock()
        self._send_failed = False
        # Refreshed by every inbound frame (PING heartbeats included); the
        # daemon's idle sweeper severs connections whose clock goes stale.
        self.last_active = time.monotonic()
        self.reader = threading.Thread(
            target=self._read_loop, name=f"repro-net-reader-{cid}", daemon=True
        )
        self.writer = threading.Thread(
            target=self._write_loop, name=f"repro-net-writer-{cid}", daemon=True
        )

    def start(self) -> None:
        self.writer.start()
        self.reader.start()

    # ----------------------------------------------------------------- reader

    def _read_loop(self) -> None:
        try:
            while True:
                try:
                    mtype, header, arrays = proto.read_frame(self.sock)
                except ProtocolError as exc:
                    self._post(MsgType.ERROR, {
                        "req": header.get("req", -1) if "header" in dir() else -1,
                        "kind": proto.ERR_PROTOCOL, "message": str(exc),
                    })
                    break
                self.last_active = time.monotonic()
                if self.daemon.faults is not None and (
                    self.daemon.faults.on_conn_frame_in(self.client_id)
                ):
                    # Injected sever: drop the socket abruptly, no GOODBYE —
                    # the client sees a reset, like a network partition.
                    try:
                        self.sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    break
                if mtype == MsgType.GOODBYE:
                    break
                self._handle(mtype, header, arrays)
        except (ConnectionError, OSError):
            pass  # peer vanished (or daemon closed the socket under us)
        finally:
            self._abandon_pending()
            self.outbox.put(_FLUSH_AND_CLOSE)
            self.daemon._forget(self)

    def _handle(self, mtype: MsgType, header: dict, arrays: dict) -> None:
        if mtype == MsgType.SUBMIT:
            self._handle_submit(header, arrays)
        elif mtype == MsgType.CANCEL:
            with self._lock:
                future = self.pending.get(int(header["req"]))
            if future is not None:
                future.cancel()  # done-callback reports back if it lands
        elif mtype == MsgType.PING:
            # The read itself already refreshed last_active; echo so the
            # client knows the connection is live end to end.
            self._post(MsgType.PONG, {"req": int(header.get("req", -1))})
        elif mtype == MsgType.STATS:
            self._post(MsgType.STATS_RESULT, {
                "req": int(header.get("req", -1)),
                "stats": self.daemon.server.stats.snapshot(),
            })
        elif mtype == MsgType.CONTROL:
            op = header.get("op")
            if op == "invalidate_cache":
                dropped = self.daemon.server.invalidate_cache(
                    header.get("model")
                )
                self._post(MsgType.CONTROL_ACK, {
                    "req": int(header.get("req", -1)),
                    "op": op, "dropped": dropped,
                })
            else:
                self._post(MsgType.ERROR, {
                    "req": int(header.get("req", -1)),
                    "kind": proto.ERR_PROTOCOL,
                    "message": f"unknown control op {op!r}",
                })
        else:
            self._post(MsgType.ERROR, {
                "req": int(header.get("req", -1)),
                "kind": proto.ERR_PROTOCOL,
                "message": f"unexpected message type {mtype.name}",
            })

    def _handle_submit(self, header: dict, arrays: dict) -> None:
        req_id = int(header["req"])
        if self.daemon.draining:
            self._post(MsgType.ERROR, {
                "req": req_id, "kind": proto.ERR_CLOSED,
                "message": "daemon is draining",
            })
            return
        try:
            system = proto.build_system(arrays)
            pair_i = arrays.get("pair_i")
            pair_j = arrays.get("pair_j")
            nloc = header.get("nloc")
            future = self.daemon.server.submit(
                header["model"],
                system,
                pair_i,
                pair_j,
                block=bool(header.get("block", True)),
                timeout=header.get("admit_timeout"),
                priority=int(header.get("priority", 0)),
                deadline=header.get("deadline"),
                client_id=self.client_id,
                nloc=None if nloc is None else int(nloc),
                pbc=bool(header.get("pbc", True)),
            )
        except QuotaExceeded as exc:
            self._post(MsgType.ERROR, {
                "req": req_id, "kind": proto.ERR_QUOTA, "message": str(exc),
            })
            return
        except QueueFull as exc:
            self._post(MsgType.ERROR, {
                "req": req_id, "kind": proto.ERR_QUEUE_FULL,
                "message": str(exc),
            })
            return
        except ServerClosed as exc:
            self._post(MsgType.ERROR, {
                "req": req_id, "kind": proto.ERR_CLOSED, "message": str(exc),
            })
            return
        except KeyError as exc:
            self._post(MsgType.ERROR, {
                "req": req_id, "kind": proto.ERR_UNKNOWN_MODEL,
                "message": str(exc),
            })
            return
        with self._lock:
            self.pending[req_id] = future
        # The callback only enqueues (req_id, future) — encoding happens on
        # the writer thread, never on the worker that resolved the future.
        future.add_done_callback(
            lambda fut, rid=req_id: self._on_done(rid, fut)
        )

    # ----------------------------------------------------------------- writer

    def _on_done(self, req_id: int, future: Future) -> None:
        with self._lock:
            self.pending.pop(req_id, None)
        self.outbox.put((req_id, future))

    def _post(self, mtype: MsgType, header: dict, arrays=None) -> None:
        self.outbox.put((mtype, header, arrays))

    def _write_loop(self) -> None:
        while True:
            item = self.outbox.get()
            if item is _FLUSH_AND_CLOSE:
                try:
                    self._send(MsgType.GOODBYE, {})
                    self.sock.shutdown(socket.SHUT_RDWR)
                except (ConnectionError, OSError):
                    pass  # peer already hung up
                self.sock.close()
                return
            try:
                if len(item) == 2:
                    self._send_future(*item)
                else:
                    self._send(*item)
            except (ConnectionError, OSError):
                # Peer is gone: keep draining the outbox (futures must not
                # pile up unread) but stop writing.
                self._send_failed = True

    def _send(self, mtype: MsgType, header: dict, arrays=None) -> None:
        if self._send_failed:
            return
        frame = proto.encode_frame(mtype, header, arrays)
        faults = self.daemon.faults
        if faults is not None:
            action, delay = faults.on_conn_frame_out(self.client_id)
            if action == "delay":
                time.sleep(delay)
            elif action == "duplicate":
                # Receivers are idempotent: a second RESULT for a resolved
                # request finds no pending future and is dropped.
                self.sock.sendall(frame)
            elif action == "corrupt":
                from repro.serving.faults import corrupt_frame

                frame = corrupt_frame(frame)
        self.sock.sendall(frame)

    def _send_future(self, req_id: int, future: Future) -> None:
        if future.cancelled():
            self._send(MsgType.ERROR, {
                "req": req_id, "kind": proto.ERR_CANCELLED,
                "message": "request cancelled",
            })
            return
        exc = future.exception()
        if exc is not None:
            if isinstance(exc, ServerClosed):
                kind = proto.ERR_CLOSED
            elif isinstance(exc, WorkerCrashed):
                kind = proto.ERR_CRASH
            elif isinstance(exc, TransientEvalError):
                kind = proto.ERR_TRANSIENT
            else:
                kind = proto.ERR_EVAL
            self._send(MsgType.ERROR, {
                "req": req_id, "kind": kind,
                "message": f"{type(exc).__name__}: {exc}",
            })
            return
        result = future.result()
        # seq is the queue's global admission stamp (-1 = served from the
        # result cache, which bypasses the queue) — clients use it to line
        # their requests up against the server's batch_log.
        seq = getattr(getattr(future, "request", None), "seq", -1)
        self._send(
            MsgType.RESULT,
            {"req": req_id, "seq": int(seq), "cached": seq < 0},
            proto.result_arrays(result),
        )

    # ------------------------------------------------------------- lifecycle

    def _abandon_pending(self) -> None:
        """Cancel still-queued requests of a dropped connection — nobody
        will read their results, so they must free their queue slots (and
        be counted cancelled) exactly like abandoned deadlines."""
        with self._lock:
            futures = list(self.pending.values())
        for f in futures:
            f.cancel()

    def drained(self) -> bool:
        with self._lock:
            no_pending = not self.pending
        return no_pending and self.outbox.empty()


class ServingDaemon:
    """Serves an :class:`~repro.serving.worker.InferenceServer` over TCP.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  The daemon owns the listening socket and all connection
    threads, but NOT the server's lifecycle policy: :meth:`stop` drains and
    stops the wrapped server too (``drain=False`` cancels pending work).

    Use as a context manager, or ``start()``/``stop()`` explicitly::

        with ServingDaemon(server) as daemon:
            client = SocketClient(daemon.address, "water")
            result = client.evaluate(frame)
    """

    def __init__(
        self,
        server: "InferenceServer",
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Optional["FaultPlan"] = None,
        idle_timeout: float = 0.0,
    ):
        self.server = server
        self.draining = False
        #: fault-injection hooks for this daemon's connections (``None``
        #: injects nothing); pass the same plan to the server for
        #: worker-side faults.
        self.faults = faults
        #: seconds of inbound silence after which a connection is severed
        #: (0 = never).  Clients with ``heartbeat`` enabled stay alive
        #: while idle; a client whose process died frees its quota slots
        #: once the sweeper reaps it.
        self.idle_timeout = float(idle_timeout)
        self.idle_swept = 0  # connections reaped by the idle sweeper
        self._closed = False
        self._conn_lock = threading.Lock()
        self._conns: list[_Connection] = []
        self._next_cid = 0
        self._stopped = threading.Event()
        self._sweep_stop = threading.Event()
        self._sweeper: Optional[threading.Thread] = None
        # The listening socket lives for the daemon's whole life; stop()
        # closes it (and __init__ failing after creation cleans it up).
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            sock.listen(64)
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self.address: tuple[str, int] = sock.getsockname()[:2]
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-net-acceptor", daemon=True
        )
        self._started = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "ServingDaemon":
        if self._closed:
            raise ServerClosed("daemon was stopped; build a new one")
        if not self._started:
            self._started = True
            self._acceptor.start()
            if self.idle_timeout > 0:
                self._sweeper = threading.Thread(
                    target=self._sweep_loop,
                    name="repro-net-sweeper",
                    daemon=True,
                )
                self._sweeper.start()
        return self

    def __enter__(self) -> "ServingDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(drain=exc == (None, None, None))

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._sock.accept()
            except OSError:
                return  # listener closed: daemon is stopping
            if self.draining:
                sock.close()
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                cid = self._next_cid
                self._next_cid += 1
                conn = _Connection(self, sock, cid)
                self._conns.append(conn)
            self._welcome(conn)
            conn.start()

    def _welcome(self, conn: _Connection) -> None:
        """HELLO/WELCOME handshake, on the acceptor thread (one frame each
        way, before the connection's own threads exist)."""
        try:
            mtype, header, _ = proto.read_frame(conn.sock)
            if mtype != MsgType.HELLO:
                raise ProtocolError(f"expected HELLO, got {mtype.name}")
            name = header.get("client")
            if name:
                conn.client_id = f"{name}-{conn.cid}"
            models = {
                n: {
                    "rcut": self.server.model(n).config.rcut,
                    "n_types": int(self.server.model(n).config.n_types),
                }
                for n in self.server.model_names()
            }
            proto.write_frame(conn.sock, MsgType.WELCOME, {
                "protocol": proto.PROTOCOL_VERSION,
                "models": models,
                "limits": {
                    "max_batch": self.server.scheduler.max_batch,
                    "max_queue": self.server.queue.maxsize,
                    "max_per_client": self.server.queue.max_per_client,
                    "cache_size": self.server.cache.max_entries,
                },
            })
        except (ConnectionError, OSError, ProtocolError):
            conn.sock.close()
            self._forget(conn)

    def _sweep_loop(self) -> None:
        """Reap connections with no inbound frame for ``idle_timeout``
        seconds: shut their sockets down, which makes their reader abandon
        pending work and clean up through the normal disconnect path.
        Bounded wait on the stop event — never a busy loop."""
        interval = max(self.idle_timeout / 4.0, 0.05)
        while not self._sweep_stop.wait(interval):
            cutoff = time.monotonic() - self.idle_timeout
            with self._conn_lock:
                idle = [c for c in self._conns if c.last_active < cutoff]
            for conn in idle:
                self.idle_swept += 1
                try:
                    conn.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass  # already closing

    def _forget(self, conn: _Connection) -> None:
        with self._conn_lock:
            if conn in self._conns:
                self._conns.remove(conn)

    def connection_count(self) -> int:
        with self._conn_lock:
            return len(self._conns)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` completes (the ``repro serve`` main
        thread parks here while the signal handler triggers the stop)."""
        return self._stopped.wait(timeout)

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Graceful shutdown: refuse new work, finish queued work, flush.

        1. stop accepting connections and SUBMITs (``draining``);
        2. stop the wrapped server — ``drain=True`` completes every queued
           request first, ``drain=False`` cancels them (either way each
           connection's done-callbacks enqueue the outcome);
        3. flush every connection's outbox, send GOODBYE, close sockets.

        Conservation holds across the wire: after a drain-stop, submitted
        == completed + failed + cancelled in ``server.stats``.
        """
        if self._closed:
            return
        self._closed = True
        self.draining = True
        self._sweep_stop.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout)
        # shutdown() (not just close()) is what actually wakes a thread
        # blocked in accept() on Linux; close() alone leaves it parked on
        # the old fd forever.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # never connected / already dead: accept() fails anyway
        self._sock.close()
        if self._started:
            self._acceptor.join(timeout)
        self.server.stop(drain=drain, timeout=timeout)
        # Workers are done: every submitted future is resolved and its
        # outcome sits in some outbox.  Flush and close.
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.outbox.put(_FLUSH_AND_CLOSE)
        deadline = time.perf_counter() + timeout
        for conn in conns:
            conn.writer.join(max(0.0, deadline - time.perf_counter()))
            conn.reader.join(max(0.0, deadline - time.perf_counter()))
        self._stopped.set()


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------


def _parse_address(address) -> tuple[str, int]:
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        return (host or "127.0.0.1", int(port))
    host, port = address
    return (str(host), int(port))


class _ResendRecord:
    """Everything needed to resubmit one in-flight SUBMIT after a
    reconnect: the original header, the original arrays (re-encoded
    bitwise identical, so the server's content-hash cache recognizes the
    replay), the remaining retry budget, and the request's absolute
    deadline (``None`` = none)."""

    __slots__ = ("header", "arrays", "retries_left", "deadline")

    def __init__(self, header, arrays, retries_left, deadline):
        self.header = header
        self.arrays = arrays
        self.retries_left = retries_left
        self.deadline = deadline


class SocketClient:
    """A remote :class:`~repro.serving.client.InferenceClient` speaking the
    wire protocol — same calling surface (``submit``/``evaluate``/
    ``evaluate_many``/``cutoff``), plus ``stats()``/``invalidate_cache()``
    round trips and ``close()``.

    One background reader thread resolves this client's futures as RESULT/
    ERROR frames arrive; submission is locked, so a client may be shared by
    several threads (each closed-loop load-generator thread typically holds
    its own connection instead — that is what exercises cross-client
    coalescing).

    ``model=None`` binds to the daemon's sole hosted model.  ``priority``
    and the per-call ``deadline`` are honoured server-side by the
    priority/EDF queue order; the server enforces per-client quotas against
    this connection's identity (``client`` name).

    Resilience knobs (all off/minimal by default — a plain client behaves
    exactly like PR 7's):

    * ``connect_retry`` — the *initial* connect retries connection
      refusals with capped exponential backoff + jitter for up to this
      many seconds (a daemon that printed its address may still be a few
      milliseconds from ``accept()`` — the CI smoke race).
    * ``retries`` — per-request resubmit budget.  ``> 0`` turns on
      reconnection: a dropped connection is re-dialed (capped exponential
      backoff + jitter, at most ``reconnect_attempts`` dials) and every
      unresolved SUBMIT still inside its budget and its original deadline
      is resent bitwise identical under the same request id.  Replays are
      safe: evaluation is deterministic, and the server's content-hash
      result cache answers a frame whose RESULT was lost without
      re-queueing it.
    * ``heartbeat`` — seconds between PING frames (0 = none), keeping an
      idle connection alive across the daemon's ``idle_timeout`` sweeps.
    """

    def __init__(
        self,
        address: Union[str, tuple],
        model: Optional[str] = None,
        priority: int = 0,
        client: Optional[str] = None,
        connect_timeout: float = 30.0,
        connect_retry: float = 5.0,
        retries: int = 0,
        reconnect_attempts: int = 5,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        heartbeat: float = 0.0,
        jitter_seed: int = 0,
    ):
        self.priority = int(priority)
        self._address = _parse_address(address)
        self._client_name = client
        self._connect_timeout = float(connect_timeout)
        self.retries = int(retries)
        self._reconnect_attempts = max(1, int(reconnect_attempts))
        self._backoff = float(backoff)
        self._backoff_cap = float(backoff_cap)
        self._rng = np.random.default_rng(jitter_seed)
        self._req = 0
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._inflight: dict[int, _ResendRecord] = {}
        self._closed = False
        self._closing = False
        self.reconnects = 0  # successful re-dials after a dropped connection
        self.resubmits = 0   # SUBMIT frames resent after reconnects
        sock, header = self._connect_with_backoff(float(connect_retry))
        self.sock = sock
        self.models: dict[str, dict] = header["models"]
        self.limits: dict = header.get("limits", {})
        if model is None:
            if len(self.models) != 1:
                raise ValueError(
                    f"daemon hosts {sorted(self.models)}; pick one explicitly"
                )
            model = next(iter(self.models))
        if model not in self.models:
            raise KeyError(
                f"model {model!r} not hosted (have {sorted(self.models)})"
            )
        self.model = model
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-net-client-reader", daemon=True
        )
        self._reader.start()
        self._heartbeat = float(heartbeat)
        self._hb_stop = threading.Event()
        self._hb_thread: Optional[threading.Thread] = None
        if self._heartbeat > 0:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-net-client-heartbeat",
                daemon=True,
            )
            self._hb_thread.start()

    # ----------------------------------------------------------- connection

    def _connect_once(self) -> tuple[socket.socket, dict]:
        """One connect + HELLO/WELCOME handshake attempt."""
        sock = socket.create_connection(
            self._address, timeout=self._connect_timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            proto.write_frame(
                sock, MsgType.HELLO, {"client": self._client_name}
            )
            mtype, header, _ = proto.read_frame(sock)
            if mtype != MsgType.WELCOME:
                raise ProtocolError(f"expected WELCOME, got {mtype.name}")
            if header.get("protocol") != proto.PROTOCOL_VERSION:
                raise ProtocolError(
                    f"server speaks protocol {header.get('protocol')}, "
                    f"client speaks {proto.PROTOCOL_VERSION}"
                )
        except BaseException:
            sock.close()
            raise
        sock.settimeout(None)  # reader thread blocks; deadlines live client-side
        return sock, header

    def _backoff_sleep(self, delay: float, cap: Optional[float] = None) -> float:
        """Sleep a jittered ``delay`` (seeded generator — deterministic per
        client) and return the doubled, capped next delay: the canonical
        capped-exponential-backoff step."""
        bound = self._backoff_cap if cap is None else cap
        time.sleep(max(0.0, min(delay * (0.5 + float(self._rng.random())), bound)))
        return min(delay * 2.0, self._backoff_cap)

    def _connect_with_backoff(self, retry_window: float):
        """Connect + handshake, retrying refused/reset dials with capped
        exponential backoff + jitter for up to ``retry_window`` seconds.
        Protocol errors (version mismatch, bad handshake) never retry —
        they are permanent, not racy."""
        deadline = time.perf_counter() + max(0.0, retry_window)
        delay = self._backoff
        while True:  # bounded: the deadline check below re-raises
            try:
                return self._connect_once()
            except (ConnectionError, OSError):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise
                delay = self._backoff_sleep(delay, cap=remaining)

    # ------------------------------------------------------------- plumbing

    @property
    def cutoff(self) -> float:
        """The bound model's neighbor cutoff (from the WELCOME handshake —
        JSON floats round-trip ``repr``-exactly, so local pair lists match
        the server's own bitwise)."""
        return float(self.models[self.model]["rcut"])

    def _next_req(self) -> tuple[int, Future]:
        with self._lock:
            if self._closed:
                raise ServerClosed("socket client is closed")
            self._req += 1
            req_id = self._req
            future: Future = Future()
            self._pending[req_id] = future
        return req_id, future

    def _send(self, mtype: MsgType, header: dict, arrays=None) -> None:
        payload = proto.encode_frame(mtype, header, arrays)
        with self._lock:
            if self._closed:
                raise ServerClosed("socket client is closed")
            self.sock.sendall(payload)

    def _read_loop(self) -> None:
        while True:
            try:
                while True:
                    mtype, header, arrays = proto.read_frame(self.sock)
                    if mtype == MsgType.GOODBYE:
                        # Orderly server-side close (drain): terminal even
                        # with retries on — the server *chose* to close.
                        self._fail_pending(ServerClosed("server said goodbye"))
                        return
                    self._dispatch(mtype, header, arrays)
            except BaseException as exc:
                # Reader death: connection loss, protocol breakage, a bad
                # frame.  With resilience on, try to reconnect + resubmit;
                # otherwise (or once recovery gives up) fail the
                # outstanding futures — a silently dead reader would leave
                # every waiter hanging until its timeout.
                if not self._recover(exc):
                    self._fail_pending(exc)
                    return

    def _recover(self, exc: BaseException) -> bool:
        """Reconnect after a dropped connection and resubmit unresolved
        requests (runs on the reader thread).

        Each pending SUBMIT still inside its retry budget and its original
        deadline is resent with the SAME request id and bitwise-identical
        arrays; the server's content-hash result cache answers a replayed
        frame whose RESULT was lost in flight bitwise identically (and
        without re-evaluating, on a hit).  Requests out of budget, past
        deadline, or without a resend record (STATS/CONTROL round trips —
        not known idempotent) fail with the original error.  Returns False
        when resilience is off, the client is closing, or every re-dial
        failed.
        """
        if self.retries <= 0 or not isinstance(
            exc, (ConnectionError, OSError, ProtocolError)
        ):
            return False
        with self._lock:
            if self._closing or self._closed:
                return False
            dead = self.sock
        try:
            dead.close()
        except OSError:
            pass
        sock = header = None
        delay = self._backoff
        for attempt in range(self._reconnect_attempts):  # bounded re-dials
            with self._lock:
                if self._closing:
                    return False
            try:
                sock, header = self._connect_once()
                break
            except (ConnectionError, OSError):
                if attempt + 1 < self._reconnect_attempts:
                    delay = self._backoff_sleep(delay)
        if sock is None:
            return False
        now = time.perf_counter()
        doomed: list[Future] = []
        resend: list[tuple[int, _ResendRecord]] = []
        with self._lock:
            self.sock = sock
            self.models = header["models"]
            self.limits = header.get("limits", {})
            self.reconnects += 1
            for rid in list(self._pending):
                future = self._pending[rid]
                rec = self._inflight.get(rid)
                if future.cancelled():
                    self._pending.pop(rid)
                    self._inflight.pop(rid, None)
                elif (
                    rec is None
                    or rec.retries_left <= 0
                    or (rec.deadline is not None and rec.deadline <= now)
                ):
                    doomed.append(self._pending.pop(rid))
                    self._inflight.pop(rid, None)
                else:
                    rec.retries_left -= 1
                    resend.append((rid, rec))
        for f in doomed:
            if not f.done():
                f.set_exception(
                    exc
                    if isinstance(exc, Exception)
                    else ConnectionError(str(exc))
                )
        for rid, rec in resend:
            head = dict(rec.header)
            if rec.deadline is not None:
                # Honor the ORIGINAL deadline: the server's EDF clock gets
                # whatever budget is left, not a fresh one.
                head["deadline"] = max(0.0, rec.deadline - now)
            try:
                self._send(MsgType.SUBMIT, head, rec.arrays)
                self.resubmits += 1
            except (ServerClosed, ConnectionError, OSError):
                # The new socket died mid-resubmit: the next read fails and
                # recovery runs again — budgets were already decremented,
                # so this converges instead of looping forever.
                break
        return True

    def _heartbeat_loop(self) -> None:
        """PING the daemon every ``heartbeat`` seconds so its idle sweeper
        sees a live (if quiet) client.  Bounded wait on the stop event."""
        while not self._hb_stop.wait(self._heartbeat):
            try:
                self._send(MsgType.PING, {"req": -1})
            except (ServerClosed, ConnectionError, OSError):
                if self.retries <= 0:
                    return  # no recovery coming; stop pinging
                # mid-reconnect: skip this beat, keep the clock running

    def _dispatch(self, mtype: MsgType, header: dict, arrays: dict) -> None:
        req_id = int(header.get("req", -1))
        with self._lock:
            future = self._pending.pop(req_id, None)
            self._inflight.pop(req_id, None)
        if future is None:
            # Cancelled locally, a heartbeat PONG, or a duplicate frame for
            # an already-resolved request (resubmit race / injected
            # duplication) — all moot.
            return
        try:
            if mtype == MsgType.RESULT:
                # Mirror the in-process future metadata: which queue seq
                # answered this request, and whether the cache did.
                future.seq = int(header.get("seq", -1))
                future.cached = bool(header.get("cached", False))
                future.set_result(proto.build_result(arrays))
            elif mtype in (MsgType.STATS_RESULT, MsgType.CONTROL_ACK):
                future.set_result(header)
            elif mtype == MsgType.ERROR:
                self._resolve_error(future, header)
        except BaseException as exc:
            # A frame that decodes but will not resolve (bad result arrays,
            # a future already failed) must still answer THIS waiter.
            if not future.done():
                future.set_exception(
                    exc if isinstance(exc, Exception) else RuntimeError(str(exc))
                )
            raise

    @staticmethod
    def _resolve_error(future: Future, header: dict) -> None:
        kind = header.get("kind")
        message = header.get("message", "")
        if kind == proto.ERR_CANCELLED:
            future.cancel()
            return
        exc: Exception
        if kind == proto.ERR_QUEUE_FULL:
            exc = QueueFull(message)
        elif kind == proto.ERR_QUOTA:
            exc = QuotaExceeded(message)
        elif kind == proto.ERR_CLOSED:
            exc = ServerClosed(message)
        elif kind == proto.ERR_UNKNOWN_MODEL:
            exc = KeyError(message)
        elif kind == proto.ERR_CRASH:
            exc = WorkerCrashed(message)
        elif kind == proto.ERR_TRANSIENT:
            exc = TransientEvalError(message)
        elif kind == proto.ERR_PROTOCOL:
            exc = ProtocolError(message)
        else:
            exc = RuntimeError(message)
        future.set_exception(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        with self._lock:
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
            self._inflight.clear()
        for f in pending:
            if not f.cancelled():
                f.set_exception(
                    exc
                    if isinstance(exc, Exception)
                    else ConnectionError(str(exc))
                )

    # ------------------------------------------------------------ submission

    def submit(
        self,
        system: "System",
        pair_i: Optional[np.ndarray] = None,
        pair_j: Optional[np.ndarray] = None,
        block: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        nloc: Optional[int] = None,
        pbc: bool = True,
    ) -> Future:
        """Queue one frame on the remote daemon; returns a local future.

        Mirrors ``InferenceClient.submit``: the neighbor pair list is
        computed here (client process) when not supplied — admission
        backpressure (``block``/``timeout``) is enforced server-side and
        surfaces as :class:`~repro.serving.queue.QueueFull` on the future.
        """
        if pair_i is None or pair_j is None:
            from repro.md.neighbor import neighbor_pairs

            pair_i, pair_j = neighbor_pairs(system, self.cutoff)
        req_id, future = self._next_req()
        arrays = proto.system_arrays(system)
        arrays["pair_i"] = pair_i
        arrays["pair_j"] = pair_j
        header = {
            "req": req_id,
            "model": self.model,
            "priority": self.priority,
            "deadline": deadline,
            "block": block,
            "admit_timeout": timeout,
            "nloc": nloc,
            "pbc": pbc,
        }
        if self.retries > 0:
            with self._lock:
                self._inflight[req_id] = _ResendRecord(
                    header=dict(header),
                    arrays=arrays,
                    retries_left=self.retries,
                    deadline=(
                        None
                        if deadline is None
                        else time.perf_counter() + deadline
                    ),
                )
        try:
            self._send(MsgType.SUBMIT, header, arrays)
        except (ConnectionError, OSError):
            if self.retries <= 0:
                raise
            # Connection mid-failure: the future stays pending; the
            # reader's recovery resubmits it from the inflight record.
        return future

    def evaluate(
        self,
        system: "System",
        pair_i: Optional[np.ndarray] = None,
        pair_j: Optional[np.ndarray] = None,
        timeout: Optional[float] = None,
    ) -> "PotentialResult":
        """Synchronous round trip under one deadline (mirrors
        ``InferenceClient.evaluate`` including cancel-on-timeout: a blown
        deadline sends CANCEL so the queued request frees its slot server-
        side instead of burning a batch slot on a result nobody reads)."""
        if timeout is None:
            return self.submit(system, pair_i, pair_j).result(None)
        deadline = time.perf_counter() + timeout
        future = self.submit(system, pair_i, pair_j, timeout=timeout)
        req_id = self._req_id_of(future)
        try:
            return future.result(max(0.0, deadline - time.perf_counter()))
        except FutureTimeout:
            future.cancel()
            if req_id is not None:
                try:
                    self._send(MsgType.CANCEL, {"req": req_id})
                except (ServerClosed, ConnectionError, OSError):
                    pass  # connection already down; nothing left to free
            raise

    def evaluate_many(
        self,
        systems: Sequence["System"],
        pair_lists: Optional[Sequence[tuple]] = None,
        timeout: Optional[float] = None,
    ) -> list:
        """Pipelined submit-then-gather (mirrors ``InferenceClient.
        evaluate_many``, cancelling the rest of the stack on any
        abandonment)."""
        deadline = None if timeout is None else time.perf_counter() + timeout

        def left() -> Optional[float]:
            if deadline is None:
                return None
            return max(0.0, deadline - time.perf_counter())

        if pair_lists is not None and len(pair_lists) != len(systems):
            raise ValueError(
                f"{len(systems)} systems but {len(pair_lists)} pair lists"
            )
        futures: list[Future] = []
        try:
            if pair_lists is None:
                for s in systems:
                    futures.append(self.submit(s, timeout=left()))
            else:
                for s, (pi, pj) in zip(systems, pair_lists):
                    futures.append(self.submit(s, pi, pj, timeout=left()))
            return [f.result(left()) for f in futures]
        except BaseException:
            for f in futures:
                if f.cancel():
                    rid = self._req_id_of(f)
                    if rid is not None:
                        try:
                            self._send(MsgType.CANCEL, {"req": rid})
                        except (ServerClosed, ConnectionError, OSError):
                            break
            raise

    def _req_id_of(self, future: Future) -> Optional[int]:
        with self._lock:
            for rid, f in self._pending.items():
                if f is future:
                    return rid
        return None

    # ------------------------------------------------------------ control ops

    def stats(self, timeout: float = 30.0) -> dict:
        """A ``ServerStats.snapshot()`` of the remote daemon."""
        req_id, future = self._next_req()
        self._send(MsgType.STATS, {"req": req_id})
        return future.result(timeout)["stats"]

    def invalidate_cache(
        self, model: Optional[str] = None, timeout: float = 30.0
    ) -> int:
        """Drop the daemon's cached results (see ``InferenceServer.
        invalidate_cache``); returns the number of entries dropped."""
        req_id, future = self._next_req()
        self._send(MsgType.CONTROL, {
            "req": req_id, "op": "invalidate_cache", "model": model,
        })
        return int(future.result(timeout).get("dropped", 0))

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Orderly close: GOODBYE, shut the socket, fail leftover futures.
        Sets ``_closing`` first so a concurrent recovery attempt stands
        down instead of re-dialing a connection the user is tearing down."""
        with self._lock:
            if self._closed:
                return
            self._closing = True
        self._hb_stop.set()
        try:
            self._send(MsgType.GOODBYE, {})
        except (ServerClosed, ConnectionError, OSError):
            pass
        self._fail_pending(ServerClosed("socket client closed"))
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
        self._reader.join(5.0)
        if self._hb_thread is not None:
            self._hb_thread.join(5.0)

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
