"""Embedding and fitting networks with the paper's skip connections (Fig 1).

* Dense layer (Fig 1 (e)): y = tanh(x·W + b).
* Embedding skip layer (Fig 1 (f)): when out = 2·in, y = (x, x) + tanh(x·W + b)
  — the CONCAT+SUM pattern the Sec 5.3.2 pass fuses into a GEMM.
* Fitting skip layer (Fig 1 (g)): when out = in, y = x + tanh(x·W + b).

Weights are created as tfmini Variables in the dtype of the precision policy
(fp64 or fp32 for the mixed mode of Sec 5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

import repro.tfmini as tf
from repro.tfmini.graph import Node, Variable


@dataclass
class NetworkParams:
    """Weight container for one MLP; ordered [(W, b), ...] plus final layer."""

    weights: list[Variable] = field(default_factory=list)
    biases: list[Variable] = field(default_factory=list)

    def variables(self) -> list[Variable]:
        out: list[Variable] = []
        for w, b in zip(self.weights, self.biases):
            out.append(w)
            out.append(b)
        return out


def _init_layer(rng, n_in: int, n_out: int, dtype, name: str):
    w = tf.variable(
        (rng.normal(size=(n_in, n_out)) / np.sqrt(n_in + n_out)).astype(dtype),
        name=f"{name}_W",
    )
    b = tf.variable((rng.normal(size=n_out) * 0.001).astype(dtype), name=f"{name}_b")
    return w, b


def build_embedding_params(
    rng: np.random.Generator,
    layers: Sequence[int],
    dtype=np.float64,
    name: str = "embed",
) -> NetworkParams:
    """Parameters for an embedding net mapping s(r) (dim 1) -> layers[-1]."""
    params = NetworkParams()
    n_in = 1
    for k, n_out in enumerate(layers):
        w, b = _init_layer(rng, n_in, n_out, dtype, f"{name}_l{k}")
        params.weights.append(w)
        params.biases.append(b)
        n_in = n_out
    return params


def apply_embedding(params: NetworkParams, x: Node, layers: Sequence[int]) -> Node:
    """Embedding net forward: dense first layer, then doubling skip layers."""
    n_in = 1
    h = x
    for k, n_out in enumerate(layers):
        pre = tf.add(tf.matmul(h, params.weights[k]), params.biases[k])
        act = tf.tanh(pre)
        if n_out == 2 * n_in:
            h = tf.add(tf.concat(h, h, axis=1), act)  # Fig 1 (f)
        elif n_out == n_in:
            h = tf.add(h, act)
        else:
            h = act  # Fig 1 (e), e.g. the 1 -> 25 input layer
        n_in = n_out
    return h


def build_fitting_params(
    rng: np.random.Generator,
    n_input: int,
    layers: Sequence[int],
    dtype=np.float64,
    name: str = "fit",
) -> NetworkParams:
    """Parameters for a fitting net mapping descriptor -> scalar energy."""
    params = NetworkParams()
    n_in = n_input
    for k, n_out in enumerate(layers):
        w, b = _init_layer(rng, n_in, n_out, dtype, f"{name}_l{k}")
        params.weights.append(w)
        params.biases.append(b)
        n_in = n_out
    w, b = _init_layer(rng, n_in, 1, dtype, f"{name}_out")
    params.weights.append(w)
    params.biases.append(b)
    return params


def apply_fitting(params: NetworkParams, d: Node, layers: Sequence[int]) -> Node:
    """Fitting net forward: residual skip layers + linear output (Fig 1 (d,g))."""
    h = d
    n_in = None
    for k, n_out in enumerate(layers):
        pre = tf.add(tf.matmul(h, params.weights[k]), params.biases[k])
        act = tf.tanh(pre)
        if n_in == n_out:
            h = tf.add(h, act)  # Fig 1 (g) residual
        else:
            h = act
        n_in = n_out
    return tf.add(tf.matmul(h, params.weights[-1]), params.biases[-1])
