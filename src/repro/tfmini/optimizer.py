"""Adam optimizer and learning-rate schedules for tfmini variables.

DeePMD-kit trains DP models with Adam and an exponentially decaying learning
rate; both are reproduced here.  The optimizer operates on
:class:`repro.tfmini.graph.Variable` objects in place, like TF1 optimizer ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.tfmini.graph import Variable


@dataclass
class ExponentialDecay:
    """lr(step) = start * rate ** (step / decay_steps), floored at ``stop``."""

    start: float = 1e-3
    stop: float = 1e-8
    decay_steps: int = 5000
    rate: float = 0.95

    def __call__(self, step: int) -> float:
        lr = self.start * self.rate ** (step / self.decay_steps)
        return max(lr, self.stop)


@dataclass
class Adam:
    """Standard Adam (Kingma & Ba) with per-variable moment buffers."""

    lr: float | ExponentialDecay = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    step: int = field(default=0, init=False)
    _m: dict[int, np.ndarray] = field(default_factory=dict, init=False, repr=False)
    _v: dict[int, np.ndarray] = field(default_factory=dict, init=False, repr=False)

    def current_lr(self) -> float:
        return self.lr(self.step) if callable(self.lr) else float(self.lr)

    def apply(self, variables: Sequence[Variable], grads: Sequence[np.ndarray]) -> float:
        """Apply one Adam update; returns the learning rate used."""
        if len(variables) != len(grads):
            raise ValueError("variables and grads length mismatch")
        self.step += 1
        lr = self.current_lr()
        b1, b2, eps = self.beta1, self.beta2, self.eps
        bias1 = 1.0 - b1**self.step
        bias2 = 1.0 - b2**self.step
        for var, g in zip(variables, grads):
            if g is None:
                continue
            g = np.asarray(g, dtype=np.float64)
            if g.shape != var.value.shape:
                raise ValueError(
                    f"grad shape {g.shape} != variable shape {var.value.shape} "
                    f"for {var.name}"
                )
            key = id(var)
            m = self._m.get(key)
            if m is None:
                m = np.zeros_like(var.value, dtype=np.float64)
                self._m[key] = m
                self._v[key] = np.zeros_like(var.value, dtype=np.float64)
            v = self._v[key]
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            update = lr * (m / bias1) / (np.sqrt(v / bias2) + eps)
            var.value = (var.value - update.astype(var.value.dtype)).astype(
                var.value.dtype
            )
        return lr
