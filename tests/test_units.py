"""Unit-system sanity: the constants everything else silently relies on."""

import numpy as np
import pytest

from repro.units import (
    EVA3_TO_BAR,
    FS,
    KB,
    MASSES,
    MVV_TO_EV,
    kinetic_temperature,
    thermal_velocity_scale,
)


class TestConstants:
    def test_boltzmann_constant(self):
        assert KB == pytest.approx(8.617333262e-5, rel=1e-9)

    def test_mvv_conversion(self):
        # 1 amu at 1 Å/ps: E = 0.5 m v^2 ≈ 5.18e-5 eV
        assert 0.5 * MVV_TO_EV == pytest.approx(5.1822e-5, rel=1e-3)

    def test_pressure_conversion(self):
        # 1 eV/Å^3 = 160.2176634 GPa = 1.602e6 bar
        assert EVA3_TO_BAR == pytest.approx(1.602176634e6, rel=1e-9)

    def test_fs_in_ps(self):
        assert FS == 1e-3

    def test_masses_table(self):
        assert MASSES["O"] == pytest.approx(15.9994)
        assert MASSES["H"] == pytest.approx(1.00794)
        assert MASSES["Cu"] == pytest.approx(63.546)


class TestHelpers:
    def test_kinetic_temperature_roundtrip(self):
        # T -> KE -> T
        n_dof = 300
        t = 330.0
        ke = 0.5 * n_dof * KB * t
        assert kinetic_temperature(ke, n_dof) == pytest.approx(t)

    def test_kinetic_temperature_zero_dof(self):
        assert kinetic_temperature(1.0, 0) == 0.0

    def test_thermal_velocity_scale_physical(self):
        # Oxygen at 330 K: sigma ~ sqrt(kT/m) ≈ 4.1 Å/ps
        sigma = thermal_velocity_scale(15.9994, 330.0)
        assert 3.0 < sigma < 6.0
        # hydrogen is ~4x faster (sqrt(16) mass ratio)
        assert thermal_velocity_scale(1.0, 330.0) == pytest.approx(
            sigma * np.sqrt(15.9994), rel=0.01
        )

    def test_thermal_velocity_invalid_mass(self):
        with pytest.raises(ValueError):
            thermal_velocity_scale(0.0, 300.0)

    def test_equipartition_consistency(self):
        """Velocities drawn at scale sigma give back T via the KE formula."""
        rng = np.random.default_rng(0)
        n = 200_000
        mass = 12.0
        sigma = thermal_velocity_scale(mass, 500.0)
        v = rng.normal(scale=sigma, size=(n, 3))
        ke = 0.5 * MVV_TO_EV * mass * float((v**2).sum())
        t = kinetic_temperature(ke, 3 * n)
        assert t == pytest.approx(500.0, rel=0.02)
