"""Table 3 — customized TensorFlow operators: baseline vs optimized.

Paper (single V100 vs serial CPU op, 12,288-atom water):
    Environment 302.54 ms -> 2.32 ms (130x)
    ProdViral    51.06 ms -> 1.34 ms  (38x)
    ProdForce    41.29 ms -> 2.41 ms  (17x)

Here the "GPU" role is played by vectorized NumPy kernels on the padded
layout and the baseline is the per-neighbor-branching Python loop — the same
algorithmic contrast at laptop scale.  The expected shape: all three ops
speed up by >= an order of magnitude, with Environment gaining the most.
"""

import numpy as np
import pytest

from benchmarks.conftest import bench_median, bench_strict, pairs_for, print_header
from repro.dp.nlist_fmt import format_neighbors
from repro.dp.ops_baseline import (
    environment_baseline,
    prod_force_baseline,
    prod_virial_baseline,
)
from repro.dp.ops_optimized import environment_op, prod_force_op, prod_virial_op

SPEEDUPS = {}


@pytest.fixture(scope="module")
def op_inputs(water_192, paper_water_config):
    cfg = paper_water_config
    pi, pj = pairs_for(water_192, cfg.rcut)
    fmt = format_neighbors(water_192, pi, pj, cfg.rcut, cfg.sel)
    em, ed, rij = environment_op(water_192, fmt, cfg.rcut_smth, cfg.rcut)
    rng = np.random.default_rng(0)
    nd = rng.normal(size=em.shape)
    idx = np.arange(water_192.n_atoms)
    return water_192, cfg, fmt, em, ed, rij, nd, idx


def _time(benchmark, fn, rounds=3):
    # Median-of-rounds; also works under --benchmark-disable (see conftest).
    return bench_median(benchmark, fn, rounds=rounds)


class TestEnvironment:
    def test_baseline(self, benchmark, op_inputs):
        sys, cfg, fmt, *_ = op_inputs
        SPEEDUPS["env_base"] = _time(
            benchmark,
            lambda: environment_baseline(sys, fmt, cfg.rcut_smth, cfg.rcut),
            rounds=2,
        )

    def test_optimized(self, benchmark, op_inputs):
        sys, cfg, fmt, *_ = op_inputs
        SPEEDUPS["env_opt"] = _time(
            benchmark, lambda: environment_op(sys, fmt, cfg.rcut_smth, cfg.rcut)
        )


class TestProdForce:
    def test_baseline(self, benchmark, op_inputs):
        sys, cfg, fmt, em, ed, rij, nd, idx = op_inputs
        SPEEDUPS["force_base"] = _time(
            benchmark,
            lambda: prod_force_baseline(nd, ed, fmt.nlist, idx, sys.n_atoms),
            rounds=2,
        )

    def test_optimized(self, benchmark, op_inputs):
        sys, cfg, fmt, em, ed, rij, nd, idx = op_inputs
        SPEEDUPS["force_opt"] = _time(
            benchmark, lambda: prod_force_op(nd, ed, fmt.nlist, idx, sys.n_atoms)
        )


class TestProdVirial:
    def test_baseline(self, benchmark, op_inputs):
        sys, cfg, fmt, em, ed, rij, nd, idx = op_inputs
        SPEEDUPS["virial_base"] = _time(
            benchmark,
            lambda: prod_virial_baseline(nd, ed, rij, fmt.nlist),
            rounds=2,
        )

    def test_optimized(self, benchmark, op_inputs):
        sys, cfg, fmt, em, ed, rij, nd, idx = op_inputs
        SPEEDUPS["virial_opt"] = _time(
            benchmark, lambda: prod_virial_op(nd, ed, rij, fmt.nlist)
        )


def test_zz_report_speedups(benchmark, op_inputs):
    """Printed comparison + the shape assertions for Table 3."""
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    required = {
        "env_base", "env_opt", "force_base", "force_opt",
        "virial_base", "virial_opt",
    }
    assert required <= SPEEDUPS.keys(), "op benchmarks must run first"
    env = SPEEDUPS["env_base"] / SPEEDUPS["env_opt"]
    force = SPEEDUPS["force_base"] / SPEEDUPS["force_opt"]
    virial = SPEEDUPS["virial_base"] / SPEEDUPS["virial_opt"]

    print_header("Table 3 — customized operator speedups (this repo | paper)")
    print(f"{'operator':<14} {'baseline':>12} {'optimized':>12} "
          f"{'speedup':>9} {'paper':>7}")
    rows = [
        ("Environment", SPEEDUPS["env_base"], SPEEDUPS["env_opt"], env, 130),
        ("ProdViral", SPEEDUPS["virial_base"], SPEEDUPS["virial_opt"], virial, 38),
        ("ProdForce", SPEEDUPS["force_base"], SPEEDUPS["force_opt"], force, 17),
    ]
    for name, tb, to, s, p in rows:
        print(f"{name:<14} {tb * 1e3:>10.1f}ms {to * 1e3:>10.2f}ms "
              f"{s:>8.1f}x {p:>6}x")

    # Shape: every customized op gains one to two orders of magnitude, as in
    # the paper.  (The exact ranking between Environment and ProdVirial
    # depends on the host; the paper's V100 ranking was 130/38/17.)
    # Wall-clock ratios (median-based); REPRO_BENCH_STRICT=0 -> report-only.
    if bench_strict():
        assert env > 10
        assert force > 5
        assert virial > 5
        assert max(env, force, virial) > 50
