"""DeepPot: the Deep Potential (se_a) model with double/mixed precision.

The model follows Fig 1 of the paper exactly:

1. the formatted neighbor list (Sec 5.2.1 layout) feeds the Environment
   operator, producing the environment matrix R~ and its derivative;
2. R~ is normalized by data statistics (davg/dstd, as in DeePMD-kit);
3. the s(r) column passes through per-neighbor-type embedding nets G;
4. the symmetry-preserving descriptor D_i = (G^T R~)(R~^T G<)/nnei^2 feeds a
   per-center-type fitting net that outputs the atomic energy E_i;
5. E = Σ E_i; forces and virial come from ProdForce/ProdVirial applied to
   dE/dR~ (computed by graph backprop, like TensorFlow's tf.gradients).

Precision (Sec 5.2.3): in ``mixed`` mode the network parameters are fp32 and
R~ is cast to fp32 at the network boundary, while positions, the environment
matrix construction, atomic-energy reduction and force assembly stay fp64.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

import repro.tfmini as tf
from repro.dp import ops_optimized  # registers prod_force/prod_virial ops
from repro.dp.network import (
    NetworkParams,
    apply_embedding,
    apply_fitting,
    build_embedding_params,
    build_fitting_params,
)
from repro.dp.nlist_fmt import FormattedNeighbors, format_neighbors
from repro.dp.ops_baseline import environment_baseline
from repro.dp.ops_optimized import environment_op
from repro.md.potential import PotentialResult
from repro.md.system import System
from repro.tfmini.graph import Node, Variable
from repro.tfmini.ops import scale as tf_scale
from repro.tfmini.ops import slice_axis


@dataclass
class DPConfig:
    """Hyper-parameters of a DP model (defaults: the paper's water model)."""

    type_names: tuple[str, ...] = ("O", "H")
    rcut: float = 6.0
    rcut_smth: float = 0.5
    sel: tuple[int, ...] = (46, 92)
    embedding_layers: tuple[int, ...] = (25, 50, 100)
    axis_neuron: int = 16
    fitting_layers: tuple[int, ...] = (240, 240, 240)
    precision: str = "double"  # "double" | "mixed"
    optimize_graph: bool = True
    use_compression: bool = True  # 64-bit neighbor codec (Sec 5.2.2)
    # True: one embedding net per neighbor type; False: one per
    # (center, neighbor) type pair — DeePMD-kit's default for water.
    type_one_side: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.precision not in ("double", "mixed"):
            raise ValueError(f"precision must be 'double' or 'mixed', got {self.precision!r}")
        if len(self.sel) != len(self.type_names):
            raise ValueError("sel must have one entry per atom type")
        if self.axis_neuron > self.embedding_layers[-1]:
            raise ValueError("axis_neuron cannot exceed the embedding width")

    @property
    def n_types(self) -> int:
        return len(self.type_names)

    @property
    def nnei(self) -> int:
        return int(sum(self.sel))

    @property
    def compute_dtype(self):
        return np.float32 if self.precision == "mixed" else np.float64

    @staticmethod
    def paper_water(**overrides) -> "DPConfig":
        """The paper's water model (Sec 6.1)."""
        return replace(DPConfig(), **overrides)

    @staticmethod
    def paper_copper(**overrides) -> "DPConfig":
        """The paper's copper model (Sec 6.1): r_c = 8 Å, sel = [500]."""
        cfg = DPConfig(
            type_names=("Cu",),
            rcut=8.0,
            rcut_smth=2.0,
            sel=(500,),
        )
        return replace(cfg, **overrides)

    @staticmethod
    def tiny(type_names=("O", "H"), sel=(12, 24), rcut=4.0, **overrides) -> "DPConfig":
        """Laptop-scale hyper-parameters for tests and quick examples."""
        cfg = DPConfig(
            type_names=tuple(type_names),
            rcut=rcut,
            rcut_smth=0.5 * rcut,
            sel=tuple(sel),
            embedding_layers=(8, 16, 32),
            axis_neuron=4,
            fitting_layers=(32, 32, 32),
        )
        return replace(cfg, **overrides)


class DeepPot:
    """A Deep Potential model: build once, evaluate on any system snapshot."""

    def __init__(self, config: DPConfig, rng: Optional[np.random.Generator] = None):
        self.config = config
        rng = rng or np.random.default_rng(config.seed)
        dtype = config.compute_dtype

        # --- parameters -------------------------------------------------------
        # one embedding net per neighbor type (type_one_side) or per
        # (center, neighbor) pair, stored flat as [t_center * n_types + b]
        n_embed = (
            config.n_types if config.type_one_side else config.n_types**2
        )
        self.embedding_params: list[NetworkParams] = [
            build_embedding_params(
                rng, config.embedding_layers, dtype, name=f"embed_{k}"
            )
            for k in range(n_embed)
        ]
        m1 = config.embedding_layers[-1]
        self.fitting_params: list[NetworkParams] = [
            build_fitting_params(
                rng,
                m1 * config.axis_neuron,
                config.fitting_layers,
                dtype,
                name=f"fit_t{t}",
            )
            for t in range(config.n_types)
        ]
        # Per-type energy bias (data statistic, not trained) and R~ statistics.
        self.e0 = np.zeros(config.n_types)
        self.davg = np.zeros((config.n_types, 4))
        self.dstd = np.ones((config.n_types, 4))

        self._build_graph()
        self.session = tf.Session(profile=False)
        self._batched = None  # lazily-built default BatchedEvaluator

    # ------------------------------------------------------------------ graph

    def _build_graph(self) -> None:
        cfg = self.config
        dtype = cfg.compute_dtype
        nnei = cfg.nnei
        m1 = cfg.embedding_layers[-1]
        m2 = cfg.axis_neuron

        self.ph_env: list[Node] = []
        e_atom_nodes: list[Node] = []
        for t in range(cfg.n_types):
            r_t = tf.placeholder(f"env_t{t}", dtype=np.float64)
            self.ph_env.append(r_t)
            r_net = tf.cast(r_t, dtype) if dtype != np.float64 else r_t

            # s(r) column -> per-neighbor-type embedding blocks
            s_col = slice_axis(r_net, 2, 0, 1)  # (n_t, nnei, 1)
            g_blocks: list[Node] = []
            for b in range(cfg.n_types):
                start = int(np.sum(cfg.sel[:b]))
                stop = start + cfg.sel[b]
                s_b = slice_axis(s_col, 1, start, stop)
                s_2d = tf.reshape(s_b, (-1, 1))
                emb_idx = b if cfg.type_one_side else t * cfg.n_types + b
                g_2d = apply_embedding(
                    self.embedding_params[emb_idx], s_2d, cfg.embedding_layers
                )
                g_blocks.append(tf.reshape(g_2d, (-1, cfg.sel[b], m1)))
            g = g_blocks[0]
            for blk in g_blocks[1:]:
                g = tf.concat(g, blk, axis=1)  # (n_t, nnei, m1)

            # D = (R~^T G)^T (R~^T G)[:, :m2] / nnei^2
            t_mat = tf_scale(
                tf.bmm(tf.transpose(r_net, (0, 2, 1)), g), 1.0 / nnei
            )  # (n_t, 4, m1)
            t2 = slice_axis(t_mat, 2, 0, m2)  # (n_t, 4, m2)
            d_mat = tf.bmm(tf.transpose(t_mat, (0, 2, 1)), t2)  # (n_t, m1, m2)
            d_flat = tf.reshape(d_mat, (-1, m1 * m2))

            fit_out = apply_fitting(self.fitting_params[t], d_flat, cfg.fitting_layers)
            e_atom = tf.cast(fit_out, np.float64) if dtype != np.float64 else fit_out
            e_atom_nodes.append(tf.reshape(e_atom, (-1,)))

        self.node_e_atoms: list[Node] = e_atom_nodes
        e_totals = [tf.reduce_sum(e) for e in e_atom_nodes]
        energy = e_totals[0]
        for e in e_totals[1:]:
            energy = tf.add(energy, e)
        self.node_energy = energy

        # --- backprop to the environment matrix: dE/dR~ -----------------------
        net_derivs = tf.grad(energy, self.ph_env)
        nd = net_derivs[0]
        for other in net_derivs[1:]:
            nd = tf.concat(nd, other, axis=0)  # rows in type-sorted order

        self.ph_em_deriv = tf.placeholder("em_deriv", dtype=np.float64)
        self.ph_rij = tf.placeholder("rij", dtype=np.float64)
        self.ph_nlist = tf.placeholder("nlist", dtype=np.int64)
        self.ph_atom_idx = tf.placeholder("atom_idx", dtype=np.int64)
        self.ph_natoms = tf.placeholder("natoms", dtype=np.int64)

        self.node_forces = Node(
            "prod_force",
            (nd, self.ph_em_deriv, self.ph_nlist, self.ph_atom_idx, self.ph_natoms),
        )
        self.node_virial = Node(
            "prod_virial", (nd, self.ph_em_deriv, self.ph_rij, self.ph_nlist)
        )
        self.node_net_deriv = nd

        # node_net_deriv is fetched directly by the batched engine (which
        # segments forces/virials per replica outside the graph); including it
        # here keeps one rewritten DAG shared by both execution paths.
        fetches = [
            self.node_energy,
            self.node_forces,
            self.node_virial,
            self.node_net_deriv,
        ] + list(self.node_e_atoms)
        if cfg.optimize_graph:
            fetches = tf.optimize_graph(fetches)
        (
            self._f_energy,
            self._f_forces,
            self._f_virial,
            self._f_net_deriv,
        ), self._f_e_atoms = (fetches[:4], fetches[4:])

    # ------------------------------------------------------------------ stats

    def trainable_variables(self) -> list[Variable]:
        out: list[Variable] = []
        for p in self.embedding_params + self.fitting_params:
            out.extend(p.variables())
        return out

    def param_count(self) -> int:
        return sum(v.value.size for v in self.trainable_variables())

    def param_nbytes(self) -> int:
        """Parameter memory — the Sec 7.1.3 '50% less memory' measurement."""
        return sum(v.value.nbytes for v in self.trainable_variables())

    def set_stats(self, davg: np.ndarray, dstd: np.ndarray, e0: np.ndarray) -> None:
        self.davg = np.asarray(davg, dtype=np.float64).reshape(self.config.n_types, 4)
        self.dstd = np.asarray(dstd, dtype=np.float64).reshape(self.config.n_types, 4)
        if np.any(self.dstd <= 0):
            raise ValueError("dstd entries must be positive")
        self.e0 = np.asarray(e0, dtype=np.float64).reshape(self.config.n_types)

    # ------------------------------------------------------------------ feeds

    def prepare_feeds(
        self,
        system: System,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        backend: str = "optimized",
        fmt: Optional[FormattedNeighbors] = None,
        nloc: Optional[int] = None,
        pbc: bool = True,
    ):
        """Format neighbors, build the (normalized) environment, sort by type.

        ``nloc`` restricts descriptor rows to the first nloc atoms (MPI-local
        atoms; the rest of the system is the ghost region) and ``pbc=False``
        uses raw displacements — the domain-decomposition mode.

        Returns (feeds dict, order array) where ``order`` maps sorted rows to
        original atom indices.
        """
        cfg = self.config
        nloc = system.n_atoms if nloc is None else int(nloc)
        if fmt is None:
            fmt = format_neighbors(
                system, pair_i, pair_j, cfg.rcut, cfg.sel,
                use_compression=cfg.use_compression, nloc=nloc, pbc=pbc,
            )
        if backend == "optimized":
            em, ed, rij = environment_op(system, fmt, cfg.rcut_smth, cfg.rcut, pbc=pbc)
        elif backend == "baseline":
            em, ed, rij = environment_baseline(
                system, fmt, cfg.rcut_smth, cfg.rcut, pbc=pbc
            )
        else:
            raise ValueError(f"unknown backend {backend!r}")

        slot_t = fmt.slot_types()
        davg = self.davg[slot_t]  # (nnei, 4)
        dstd = self.dstd[slot_t]
        em_n = (em - davg) / dstd
        ed_n = ed / dstd[..., None]

        local_types = system.types[:nloc]
        order = np.argsort(local_types, kind="stable")
        feeds = {}
        for t in range(cfg.n_types):
            idx_t = order[local_types[order] == t]
            feeds[self.ph_env[t]] = em_n[idx_t]
        feeds[self.ph_em_deriv] = ed_n[order]
        feeds[self.ph_rij] = rij[order]
        feeds[self.ph_nlist] = fmt.nlist[order]
        feeds[self.ph_atom_idx] = order
        feeds[self.ph_natoms] = np.array([system.n_atoms], dtype=np.int64)
        return feeds, order

    # --------------------------------------------------------------- evaluate

    @property
    def batched(self):
        """The model's default batched evaluation engine (R=1 fast path).

        Drivers that batch many replicas (:class:`repro.md.ensemble.
        EnsembleSimulation`) should construct their own
        :class:`~repro.dp.batch.BatchedEvaluator` so scratch-buffer shapes
        (and the engine's compiled-plan arena) stay steady instead of
        thrashing between batch sizes.
        """
        if self._batched is None:
            from repro.dp.batch import BatchedEvaluator

            self._batched = BatchedEvaluator(self)
        return self._batched

    def plan_stats(self) -> dict:
        """Executor counters of the default engine's compiled plan.

        ``topo_sorts`` stays at 1 for the engine's lifetime and
        ``arena_allocs`` stops growing once every batch shape has been seen
        — the two fixed costs the plan layer eliminates (see
        :mod:`repro.tfmini.plan`).
        """
        if self._batched is None or self._batched._plan is None:
            return {"compiled": False}
        plan = self._batched.plan
        return {
            "compiled": True,
            "topo_sorts": plan.stats.topo_sorts,
            "runs": plan.stats.runs,
            "arena_builds": plan.stats.arena_builds,
            "arena_allocs": plan.alloc_count(),
            "arena_nbytes": plan.arena_nbytes(),
        }

    def evaluate(
        self,
        system: System,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        backend: str = "optimized",
        nloc: Optional[int] = None,
        pbc: bool = True,
    ) -> PotentialResult:
        """Energy of the first ``nloc`` atoms + forces on all atoms.

        Routes through the batched engine as an R=1 stack — the single-replica
        MD path and the multi-replica ensemble path share one executor (a
        compiled execution plan over the post-fusion graph, see
        :mod:`repro.tfmini.plan`), and the results are bitwise identical to
        :meth:`evaluate_serial` (the ``Session.run`` reference path, kept
        for differential testing).

        In domain-decomposition mode (nloc < n_atoms) the returned forces
        array covers locals *and* ghosts; the caller reverse-communicates the
        ghost part (Sec 5.4), and ``energy``/``atom_energies`` cover locals
        only.
        """
        return self.batched.evaluate_batch(
            [system],
            [(pair_i, pair_j)],
            backend=backend,
            nlocs=None if nloc is None else [nloc],
            pbc=pbc,
        )[0]

    def evaluate_batch(
        self,
        systems: Sequence[System],
        pair_lists,
        backend: str = "optimized",
        nlocs=None,
        pbc: bool = True,
    ) -> list[PotentialResult]:
        """Batched evaluation of R frames (see :mod:`repro.dp.batch`)."""
        return self.batched.evaluate_batch(
            systems, pair_lists, backend=backend, nlocs=nlocs, pbc=pbc
        )

    def evaluate_serial(
        self,
        system: System,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        backend: str = "optimized",
        nloc: Optional[int] = None,
        pbc: bool = True,
    ) -> PotentialResult:
        """The original single-frame path: per-call feeds, in-graph ProdForce/
        ProdVirial, uncompiled ``Session.run`` execution.  Reference oracle
        for the batched engine's (compiled-plan) R=1 results."""
        nloc = system.n_atoms if nloc is None else int(nloc)
        feeds, order = self.prepare_feeds(
            system, pair_i, pair_j, backend=backend, nloc=nloc, pbc=pbc
        )
        out = self.session.run(
            [self._f_energy, self._f_forces, self._f_virial] + list(self._f_e_atoms),
            feeds,
        )
        energy, forces, virial = out[0], out[1], out[2]
        e_atoms_sorted = np.concatenate([np.atleast_1d(e) for e in out[3:]])

        # add per-type bias and map atomic energies back to original order
        local_types = system.types[:nloc]
        atom_e = np.empty(nloc)
        atom_e[order] = e_atoms_sorted
        atom_e += self.e0[local_types]
        total = float(energy + self.e0[local_types].sum())
        return PotentialResult(total, forces, virial, atom_energies=atom_e)
