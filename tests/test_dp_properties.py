"""Property-based tests of the DP model's physical invariants on *random*
systems — hypothesis drives compositions, densities and transformations.

These are the symmetry guarantees Sec 5.2.1 leans on ("the descriptors are
permutationally invariant") plus the exactness contracts the custom-operator
optimizations must preserve.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.model import DeepPot, DPConfig
from repro.md.box import Box
from repro.md.neighbor import neighbor_pairs
from repro.md.system import System

# One model reused across examples (hypothesis runs many cases; building a
# graph per case would dominate).
_MODEL = DeepPot(DPConfig.tiny(seed=99))
_RCUT = _MODEL.config.rcut

# The three 90°-rotation generators about the axes map a cubic box onto
# itself, so they are exact symmetries of the periodic system.
_ROT90 = [
    np.array([[1.0, 0, 0], [0, 0, -1.0], [0, 1.0, 0]]),
    np.array([[0, 0, 1.0], [0, 1.0, 0], [-1.0, 0, 0]]),
    np.array([[0, -1.0, 0], [1.0, 0, 0], [0, 0, 1.0]]),
]


def random_system(seed: int, n_atoms: int, box_len: float) -> System:
    rng = np.random.default_rng(seed)
    return System(
        box=Box([box_len] * 3),
        positions=rng.uniform(0, box_len, size=(n_atoms, 3)),
        types=rng.integers(0, 2, size=n_atoms),
        masses=np.array([16.0, 1.0]),
        type_names=["O", "H"],
    )


def evaluate(system: System):
    pi, pj = neighbor_pairs(system, _RCUT)
    return _MODEL.evaluate(system, pi, pj)


class TestSymmetryProperties:
    @given(seed=st.integers(0, 10**6), n=st.integers(4, 40))
    @settings(max_examples=15, deadline=None)
    def test_permutation_invariance(self, seed, n):
        sys_a = random_system(seed, n, 11.0)
        res_a = evaluate(sys_a)
        perm = np.random.default_rng(seed + 1).permutation(n)
        sys_b = sys_a.copy()
        sys_b.positions = sys_a.positions[perm]
        sys_b.types = sys_a.types[perm]
        res_b = evaluate(sys_b)
        assert res_b.energy == pytest.approx(res_a.energy, rel=1e-10, abs=1e-12)
        np.testing.assert_allclose(res_b.forces, res_a.forces[perm], atol=1e-10)

    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(4, 30),
        axis=st.integers(0, 2),
    )
    @settings(max_examples=15, deadline=None)
    def test_rotation_equivariance(self, seed, n, axis):
        rot = _ROT90[axis]
        sys_a = random_system(seed, n, 11.0)
        res_a = evaluate(sys_a)
        sys_b = sys_a.copy()
        sys_b.positions = sys_b.box.wrap(sys_a.positions @ rot.T)
        res_b = evaluate(sys_b)
        assert res_b.energy == pytest.approx(res_a.energy, rel=1e-10, abs=1e-12)
        np.testing.assert_allclose(res_b.forces, res_a.forces @ rot.T, atol=1e-9)

    @given(
        seed=st.integers(0, 10**6),
        n=st.integers(4, 30),
        shift=st.lists(st.floats(-8, 8), min_size=3, max_size=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_translation_invariance(self, seed, n, shift):
        sys_a = random_system(seed, n, 11.0)
        res_a = evaluate(sys_a)
        sys_b = sys_a.copy()
        sys_b.positions = sys_b.box.wrap(sys_a.positions + np.asarray(shift))
        res_b = evaluate(sys_b)
        assert res_b.energy == pytest.approx(res_a.energy, rel=1e-10, abs=1e-12)
        np.testing.assert_allclose(res_b.forces, res_a.forces, atol=1e-9)

    @given(seed=st.integers(0, 10**6), n=st.integers(4, 30))
    @settings(max_examples=10, deadline=None)
    def test_newton_third_law(self, seed, n):
        res = evaluate(random_system(seed, n, 11.0))
        np.testing.assert_allclose(res.forces.sum(axis=0), 0.0, atol=1e-11)

    @given(seed=st.integers(0, 10**6), n=st.integers(4, 25))
    @settings(max_examples=10, deadline=None)
    def test_backends_bit_compatible(self, seed, n):
        """The baseline (looped) and optimized (vectorized) operator sets
        agree on arbitrary random inputs — the Table 3 optimizations change
        time, never physics."""
        sysr = random_system(seed, n, 11.0)
        pi, pj = neighbor_pairs(sysr, _RCUT)
        opt = _MODEL.evaluate(sysr, pi, pj, backend="optimized")
        base = _MODEL.evaluate(sysr, pi, pj, backend="baseline")
        assert base.energy == pytest.approx(opt.energy, rel=1e-13)
        np.testing.assert_allclose(base.forces, opt.forces, atol=1e-12)
        np.testing.assert_allclose(base.virial, opt.virial, atol=1e-12)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_energy_is_smooth_across_cutoff(self, seed):
        """Moving one atom through r_cut changes E continuously — the
        smoothing function's job, and what padding must not break."""
        rng = np.random.default_rng(seed)
        box = Box([14.0] * 3)
        fixed = np.array([[7.0, 7.0, 7.0]])
        probe_dir = rng.normal(size=3)
        probe_dir /= np.linalg.norm(probe_dir)
        energies = []
        for r in np.linspace(_RCUT - 0.2, _RCUT + 0.2, 21):
            sysr = System(
                box=box,
                positions=np.vstack([fixed, fixed + r * probe_dir]),
                types=np.array([0, 1]),
                masses=np.array([16.0, 1.0]),
            )
            energies.append(evaluate(sysr).energy)
        diffs = np.abs(np.diff(energies))
        assert diffs.max() < 5e-3  # no jump at the cutoff crossing
