"""Train a Deep Potential water model from "ab initio" data, end to end.

Reproduces the DeePMD-kit training pipeline the paper builds on:

1. reference MD with the oracle potential (the DFT stand-in) generates
   configurations — the "AIMD trajectory";
2. each frame is labeled with energy/forces — the "ab initio data";
3. descriptor statistics (davg/dstd) and the per-type energy bias are
   computed from the data, exactly DeePMD-kit's data_stat stage;
4. Adam + exponentially decaying learning rate minimizes the combined
   energy+force loss (force matching requires gradients *of gradients*,
   which the tfmini graph engine provides);
5. held-out validation reports energy/force RMSE vs the reference.

Run:  python examples/train_water_deep_potential.py [--steps N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.structures import water_box
from repro.dp import DeepPot, DPConfig, Trainer, TrainConfig, label_frames, sample_md_frames
from repro.oracles import FlexibleWater


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=800, help="training steps")
    parser.add_argument("--frames", type=int, default=24, help="training frames")
    args = parser.parse_args()

    oracle = FlexibleWater(cutoff=4.0)
    base = water_box((3, 3, 3), seed=0)
    print(f"Sampling {args.frames} frames of oracle MD ({base.n_atoms} atoms)...")
    frames = sample_md_frames(
        base, oracle, n_frames=args.frames, stride=10, equilibration=60, seed=0
    )
    dataset = label_frames(frames, oracle)
    train_set, valid_set = dataset.split(0.75, seed=1)
    print(f"Labeled: {len(train_set)} training / {len(valid_set)} validation frames")

    force_std = float(
        np.std(np.concatenate([f.forces.ravel() for f in train_set.frames]))
    )
    print(f"Force standard deviation of the data: {force_std:.3f} eV/Å")

    config = DPConfig.tiny(rcut=4.0)
    model = DeepPot(config)
    train_set.apply_stats(model)
    print(
        f"Model: {model.param_count()} parameters, sel={config.sel}, "
        f"r_c={config.rcut} Å, embedding={config.embedding_layers}, "
        f"fitting={config.fitting_layers}"
    )

    trainer = Trainer(
        model,
        train_set,
        TrainConfig(
            n_steps=args.steps,
            lr_start=3e-3,
            lr_stop=5e-6,
            decay_steps=max(args.steps // 6, 1),
            log_every=max(args.steps // 8, 1),
        ),
    )
    print(f"\n{'step':>6} {'lr':>10} {'loss':>12} {'rmse_E/atom':>12} {'rmse_F':>10}")
    trainer.train(verbose=False)
    for rec in trainer.history:
        print(
            f"{rec.step:>6} {rec.lr:>10.2e} {rec.loss:>12.3e} "
            f"{rec.rmse_e_per_atom:>12.3e} {rec.rmse_f:>10.3f}"
        )

    rmse_e, rmse_f = trainer.evaluate_errors(valid_set)
    print(f"\nValidation: RMSE(E)/atom = {rmse_e:.3e} eV, RMSE(F) = {rmse_f:.3f} eV/Å")
    print(f"Force RMSE / data std: {rmse_f / force_std:.2f} "
          f"(< 1 means the model learned structure beyond the mean)")


if __name__ == "__main__":
    main()
