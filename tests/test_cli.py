"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.dp" in out
        assert "batched" in out  # the batched multi-frame engine is listed
        assert "repro.serving" in out
        assert "model zoo" in out

    def test_serve_bench_tiny(self, capsys):
        assert main([
            "serve-bench", "--tiny", "--clients", "2", "--requests", "2",
            "--max-batch", "2", "--max-wait-us", "2000",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 requests" in out
        assert "occupancy" in out
        assert "PASS" in out

    def test_serve_bench_rejects_unknown_zoo_name(self):
        with pytest.raises(KeyError):
            main(["serve-bench", "--model", "helium", "--clients", "1",
                  "--requests", "1"])

    def test_scaling_prints_tables(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Fig 5" in out
        assert "Fig 6" in out
        assert "86.2" in out or "85.9" in out  # the headline PFLOPS row

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
