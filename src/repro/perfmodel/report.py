"""Report printers for the Summit-scale results (Tables 1/4, Figs 5/6).

Shared by ``examples/summit_scaling.py`` and ``python -m repro scaling``.
"""

from __future__ import annotations

from repro.perfmodel import (
    COPPER_SPEC,
    WATER_SPEC,
    strong_scaling,
    table1_rows,
    table4_rows,
    weak_scaling,
)
from repro.perfmodel.scaling import (
    COPPER_STRONG_ATOMS,
    COPPER_WEAK_ATOMS_PER_NODE,
    FIG5_COPPER_NODES,
    FIG5_PAPER_COPPER_DOUBLE,
    FIG5_PAPER_WATER_DOUBLE,
    FIG5_WATER_NODES,
    FIG6_PAPER_COPPER_DOUBLE,
    FIG6_PAPER_WATER_DOUBLE,
    FIG6_WATER_NODES,
    TABLE1_LITERATURE,
    WATER_STRONG_ATOMS,
    WATER_WEAK_ATOMS_PER_NODE,
)


def print_table4() -> None:
    print("=" * 78)
    print("Table 4 — water strong scaling, 12,582,912 atoms  (model | paper)")
    print("=" * 78)
    print(f"{'#GPUs':>6} {'atoms/GPU':>10} {'ghosts':>14} {'loop/s':>15} "
          f"{'eff':>11} {'PFLOPS':>13} {'%peak':>13}")
    for r in table4_rows():
        p = r["paper"]
        print(
            f"{r['gpus']:>6} {r['atoms_per_gpu']:>10.0f} "
            f"{r['ghosts_per_gpu']:>7.0f}|{p[1]:<6} "
            f"{r['md_loop_time']:>7.1f}|{p[2]:<7.2f} "
            f"{r['efficiency']:>5.2f}|{p[3]:<5.2f} "
            f"{r['pflops']:>6.2f}|{p[4]:<6.2f} "
            f"{r['percent_peak']:>6.1f}|{p[5]:<6.2f}"
        )


def print_fig5() -> None:
    print("\n" + "=" * 78)
    print("Fig 5 — strong scaling (double precision)  (model | paper)")
    print("=" * 78)
    print("Water, 12,582,912 atoms:")
    pts = strong_scaling(WATER_SPEC, WATER_STRONG_ATOMS, FIG5_WATER_NODES)
    for p in pts:
        ref = FIG5_PAPER_WATER_DOUBLE[p.n_nodes]
        print(
            f"  {p.n_nodes:>5} nodes: {p.pflops:>5.1f}|{ref[0]:<5.1f} PFLOPS   "
            f"{p.t_step * 1e3:>5.0f}|{ref[1]:<4d} ms/step   eff {p.efficiency:.2f}"
        )
    print("Copper, 25,739,424 atoms:")
    for p in strong_scaling(COPPER_SPEC, COPPER_STRONG_ATOMS, FIG5_COPPER_NODES):
        ref = FIG5_PAPER_COPPER_DOUBLE[p.n_nodes]
        print(
            f"  {p.n_nodes:>5} nodes: {p.pflops:>5.1f}|{ref[0]:<5.1f} PFLOPS   "
            f"{p.t_step * 1e3:>5.0f}|{ref[1]:<4d} ms/step   eff {p.efficiency:.2f}"
        )
    print("Copper, mixed precision:")
    for p in strong_scaling(
        COPPER_SPEC, COPPER_STRONG_ATOMS, FIG5_COPPER_NODES, precision="mixed"
    ):
        print(f"  {p.n_nodes:>5} nodes: {p.pflops:>5.1f} PFLOPS   "
              f"{p.t_step * 1e3:>5.0f} ms/step")


def print_fig6() -> None:
    print("\n" + "=" * 78)
    print("Fig 6 — weak scaling  (model | paper, PFLOPS, double)")
    print("=" * 78)
    water = weak_scaling(WATER_SPEC, WATER_WEAK_ATOMS_PER_NODE, FIG6_WATER_NODES)
    copper = weak_scaling(COPPER_SPEC, COPPER_WEAK_ATOMS_PER_NODE, FIG6_WATER_NODES)
    print(f"{'nodes':>6} {'water atoms':>12} {'PFLOPS':>13} "
          f"{'Cu atoms':>12} {'PFLOPS':>13}")
    for pw, pc in zip(water, copper):
        print(
            f"{pw.n_nodes:>6} {pw.n_atoms:>12,} "
            f"{pw.pflops:>6.1f}|{FIG6_PAPER_WATER_DOUBLE[pw.n_nodes]:<6.1f} "
            f"{pc.n_atoms:>12,} "
            f"{pc.pflops:>6.1f}|{FIG6_PAPER_COPPER_DOUBLE[pc.n_nodes]:<6.1f}"
        )
    mixed = weak_scaling(
        COPPER_SPEC, COPPER_WEAK_ATOMS_PER_NODE, [4560], precision="mixed"
    )[0]
    print(f"\nFull-machine copper, mixed precision: {mixed.pflops:.1f} PFLOPS "
          f"(paper: 137.4)")


def print_table1() -> None:
    print("\n" + "=" * 78)
    print("Table 1 — time-to-solution survey (s/step/atom)")
    print("=" * 78)
    print(f"{'work':<26} {'system':<7} {'#atoms':>12} {'TtS':>10}")
    for name, year, pot, system, n_atoms, where, tts in TABLE1_LITERATURE:
        print(f"{name:<26} {system:<7} {n_atoms:>12,} {tts:>10.1e}")
    for r in table1_rows():
        print(
            f"{r['work']:<26} {r['system']:<7} {r['n_atoms']:>12,} "
            f"{r['tts_model']:>10.1e}  (paper: {r['tts_paper']:.1e})"
        )


def print_headline() -> None:
    print("\n" + "=" * 78)
    print("Headline claims")
    print("=" * 78)
    cu = strong_scaling(COPPER_SPEC, 113_246_208, [4560])[0]
    cu_m = strong_scaling(COPPER_SPEC, 113_246_208, [4560], precision="mixed")[0]
    print(
        f"113M-atom copper on 4,560 nodes: {cu.pflops:.1f} PFLOPS double "
        f"(paper: 86.2), {cu_m.pflops:.1f} mixed (paper: 137.4)"
    )
    hours = cu.t_step * 1e6 / 3600
    print(f"  1 ns (1e6 steps @ 1 fs) in {hours:.0f} h double "
          f"(paper: 23 h), {cu_m.t_step * 1e6 / 3600:.0f} h mixed (paper: 14 h)")
    print(f"  -> {cu.ns_per_day(COPPER_SPEC.timestep_fs):.2f} ns/day double — "
          f"the '1 nanosecond/day for 100M atoms' claim")



def print_all() -> None:
    """Print every Summit-scale comparison table."""
    print_table4()
    print_fig5()
    print_fig6()
    print_table1()
    print_headline()
