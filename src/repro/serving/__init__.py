"""repro.serving — dynamic micro-batching inference service.

The ROADMAP's "heavy traffic" north star, built on the batched evaluation
engine (:mod:`repro.dp.batch`): many clients submit frames
(positions/types/box), a scheduler coalesces whatever is pending — up to
``max_batch`` frames, waiting at most ``max_wait_us`` — into ONE batched
graph execution per model, executed by a pool of worker threads (one per
model by default, so multi-model traffic overlaps inside numpy's
GIL-releasing kernels), and results scatter back to per-request futures in
submission order.  Per-frame results are bitwise identical to direct
``DeepPot.evaluate`` calls regardless of batch composition or worker
interleaving.

    queue.py      bounded priority/EDF request queue (backpressure, seq
                  stamping, per-key deques + key-aware wakeups, per-client
                  quotas) + the content-addressed ResultCache
    scheduler.py  micro-batching policy (max_batch / max_wait_us, per model)
    worker.py     InferenceServer: model registry + the worker pool
    client.py     InferenceClient: sync and future-based submission
    metrics.py    ServerStats: deterministic counters + timing gauges
    protocol.py   the length-prefixed binary wire format
    net.py        ServingDaemon (socket front-end) + SocketClient
    faults.py     deterministic fault injection (FaultPlan) for chaos tests

Quickstart::

    from repro.serving import InferenceServer

    server = InferenceServer({"water": m1, "copper": m2})  # 2 workers
    client = server.client("water")
    result = client.evaluate(system)          # sync
    futures = [client.submit(s) for s in frames]  # pipelined
    server.stop()

Out of process (``repro serve`` wraps the daemon as a CLI)::

    from repro.serving import ServingDaemon, SocketClient

    with ServingDaemon(server) as daemon:       # TCP on daemon.address
        with SocketClient(daemon.address) as c:
            result = c.evaluate(system)         # bitwise == in-process
"""

from repro.serving.client import (
    InferenceClient,
    perturbed_frames,
    run_closed_loop_clients,
    served_matches_direct,
)
from repro.serving.faults import (
    CrashWorker,
    DelayAdmission,
    FailEval,
    FaultPlan,
    InjectedWorkerCrash,
    SeverConnection,
    TamperFrame,
)
from repro.serving.metrics import BatchRecord, ServerStats
from repro.serving.net import ServingDaemon, SocketClient
from repro.serving.protocol import PROTOCOL_VERSION, MsgType, ProtocolError
from repro.serving.queue import (
    InferenceRequest,
    QueueFull,
    QuotaExceeded,
    RequestQueue,
    ResultCache,
    ServerClosed,
    TransientEvalError,
    WorkerCrashed,
    frame_content_key,
)
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.worker import InferenceServer

__all__ = [
    "BatchRecord",
    "CrashWorker",
    "DelayAdmission",
    "FailEval",
    "FaultPlan",
    "InferenceClient",
    "InferenceRequest",
    "InferenceServer",
    "InjectedWorkerCrash",
    "MicroBatchScheduler",
    "MsgType",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFull",
    "QuotaExceeded",
    "RequestQueue",
    "ResultCache",
    "ServerClosed",
    "ServerStats",
    "ServingDaemon",
    "SeverConnection",
    "SocketClient",
    "TamperFrame",
    "TransientEvalError",
    "WorkerCrashed",
    "frame_content_key",
    "perturbed_frames",
    "run_closed_loop_clients",
    "served_matches_direct",
]
