"""Sec 5.3 / Sec 7.1.2 — standard-operator fusions on tall-skinny matrices.

Paper (12,288-atom water, V100):
    MATMUL+SUM  -> GEMM        1.3x
    CONCAT+SUM  -> GEMM (I,I)  1.7x
    TANH+TANHGrad -> fused     1.6x
    combined extra loop speedup 1.21x

The benchmark uses the paper's own shapes: the oxygen-hydrogen embedding
rows of a 4,096-molecule water system are 376,832 x 50 multiplied by 50 x
100 (Sec 5.3.1) — scaled down by default to keep laptop runtimes sane.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header
import repro.tfmini as tf
from repro.tfmini.graph import topo_sort

ROWS = 65536  # paper: 376,832
TIMES = {}


@pytest.fixture(scope="module")
def tensors():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(ROWS, 50))
    w = rng.normal(size=(50, 100))
    b = rng.normal(size=100)
    t = rng.normal(size=(ROWS, 100))
    return x, w, b, t


def _mean(benchmark, fn, rounds=5):
    benchmark.pedantic(fn, rounds=rounds, iterations=1, warmup_rounds=1)
    return benchmark.stats.stats.mean


class TestMatmulSum:
    def test_unfused(self, benchmark, tensors):
        x, w, b, t = tensors
        xn, wn, bn = tf.constant(x), tf.constant(w), tf.constant(b)
        y = tf.add(tf.matmul(xn, wn), bn)
        sess = tf.Session()
        TIMES["mm_unfused"] = _mean(benchmark, lambda: sess.run(y))

    def test_gemm(self, benchmark, tensors):
        x, w, b, t = tensors
        xn, wn, bn = tf.constant(x), tf.constant(w), tf.constant(b)
        y = tf.gemm(xn, wn, bn)
        sess = tf.Session()
        TIMES["mm_gemm"] = _mean(benchmark, lambda: sess.run(y))


class TestConcatSum:
    def test_unfused(self, benchmark, tensors):
        x, w, b, t = tensors
        xn, tn = tf.constant(x), tf.constant(t[:, :100])
        y = tf.add(tf.concat(xn, xn, axis=1), tn)
        sess = tf.Session()
        TIMES["cc_unfused"] = _mean(benchmark, lambda: sess.run(y))

    def test_gemm_ii(self, benchmark, tensors):
        x, w, b, t = tensors
        xn, tn = tf.constant(x), tf.constant(t[:, :100])
        y = tf.optimize_graph(
            tf.add(tf.concat(xn, xn, axis=1), tn), passes=("concat_sum",)
        )
        ops = [n.op for n in topo_sort([y])]
        assert "gemm" in ops and "concat" not in ops
        sess = tf.Session()
        TIMES["cc_gemm"] = _mean(benchmark, lambda: sess.run(y))


class TestTanhFusion:
    def _graph(self, tensors, fused: bool):
        x, w, b, t = tensors
        xv = tf.variable(x[: ROWS // 2], name="xv")
        y = tf.tanh(xv)
        loss = tf.reduce_sum(tf.square(y))
        g = tf.grad(loss, [xv])[0]
        fetches = [loss, g]
        if fused:
            fetches = tf.optimize_graph(fetches, passes=("tanh",))
            ops = [n.op for n in topo_sort(fetches)]
            assert "tanh_fused" in ops
        return fetches

    def test_unfused(self, benchmark, tensors):
        fetches = self._graph(tensors, fused=False)
        sess = tf.Session()
        TIMES["tanh_unfused"] = _mean(benchmark, lambda: sess.run(fetches))

    def test_fused(self, benchmark, tensors):
        fetches = self._graph(tensors, fused=True)
        sess = tf.Session()
        TIMES["tanh_fused"] = _mean(benchmark, lambda: sess.run(fetches))


def test_zz_report(benchmark, tensors):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    required = {
        "mm_unfused", "mm_gemm", "cc_unfused", "cc_gemm",
        "tanh_unfused", "tanh_fused",
    }
    assert required <= TIMES.keys()
    mm = TIMES["mm_unfused"] / TIMES["mm_gemm"]
    cc = TIMES["cc_unfused"] / TIMES["cc_gemm"]
    th = TIMES["tanh_unfused"] / TIMES["tanh_fused"]
    print_header("Sec 5.3 / 7.1.2 — graph fusion speedups (this repo | paper)")
    print(f"{'rewrite':<26} {'unfused':>10} {'fused':>10} {'speedup':>9} {'paper':>6}")
    print(f"{'MATMUL+SUM -> GEMM':<26} {TIMES['mm_unfused']*1e3:>8.2f}ms "
          f"{TIMES['mm_gemm']*1e3:>8.2f}ms {mm:>8.2f}x {'1.3x':>6}")
    print(f"{'CONCAT+SUM -> GEMM(I,I)':<26} {TIMES['cc_unfused']*1e3:>8.2f}ms "
          f"{TIMES['cc_gemm']*1e3:>8.2f}ms {cc:>8.2f}x {'1.7x':>6}")
    print(f"{'TANH+TANHGrad fusion':<26} {TIMES['tanh_unfused']*1e3:>8.2f}ms "
          f"{TIMES['tanh_fused']*1e3:>8.2f}ms {th:>8.2f}x {'1.6x':>6}")
    # Shape assertions: each fusion is at worst neutral, overall a net win.
    assert mm > 0.9
    assert cc > 0.9
    assert th > 0.9
    assert mm * cc * th > 1.2


def test_whole_model_graph_optimization(benchmark, zoo_water_model, water_192):
    """The Sec 7.1.2 'extra 1.21x on the whole MD loop' analogue: evaluate
    the full DP graph with and without the rewrite passes."""
    import time
    from dataclasses import replace

    from repro.dp.model import DeepPot
    from repro.md.neighbor import neighbor_pairs

    base = zoo_water_model
    unopt = DeepPot(replace(base.config, optimize_graph=False))
    for vs, vd in zip(base.trainable_variables(), unopt.trainable_variables()):
        vd.assign(vs.value.copy())
    unopt.set_stats(base.davg, base.dstd, base.e0)

    pi, pj = neighbor_pairs(water_192, base.config.rcut)

    def run_opt():
        base.evaluate(water_192, pi, pj)

    benchmark.pedantic(run_opt, rounds=5, iterations=1, warmup_rounds=1)
    t_opt = benchmark.stats.stats.mean
    t0 = time.perf_counter()
    for _ in range(5):
        unopt.evaluate(water_192, pi, pj)
    t_unopt = (time.perf_counter() - t0) / 5

    print_header("Whole-graph effect of the Sec 5.3 passes")
    print(f"unoptimized graph: {t_unopt * 1e3:.1f} ms/eval")
    print(f"optimized graph:   {t_opt * 1e3:.1f} ms/eval")
    print(f"speedup: {t_unopt / t_opt:.2f}x (paper: 1.21x on the MD loop)")
    assert t_unopt / t_opt > 0.85  # never a regression beyond noise
