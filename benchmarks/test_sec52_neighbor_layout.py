"""Sec 5.2.1 / 5.2.2 ablation — the neighbor-list layout and 64-bit codec.

Three contrasts the paper's algorithmic section motivates:

1. formatting: AoS records + Python tuple sort (baseline) vs vectorized
   scalar-key sort with the 64-bit codec (optimized);
2. the codec itself: uint64-key sort vs lexicographic multi-array record
   sort inside the vectorized formatter ("reduces the number of comparisons
   by half");
3. computational granularity: embedding-matrix computation with per-neighbor
   type branching vs the branch-free padded layout.
"""

import numpy as np
import pytest

from benchmarks.conftest import bench_median, bench_strict, pairs_for, print_header
from repro.dp.nlist_fmt import (
    PAD,
    format_neighbors,
    format_neighbors_baseline,
)
from repro.dp.ops_optimized import environment_op

TIMES = {}


@pytest.fixture(scope="module")
def inputs(water_192, paper_water_config):
    cfg = paper_water_config
    pi, pj = pairs_for(water_192, cfg.rcut)
    return water_192, cfg, pi, pj


# Medians of benchmark.stats, not single-round means: robust to timer noise.
_median = bench_median


class TestFormatting:
    def test_baseline_aos_sort(self, benchmark, inputs):
        sys, cfg, pi, pj = inputs
        TIMES["fmt_aos"] = _median(
            benchmark,
            lambda: format_neighbors_baseline(sys, pi, pj, cfg.rcut, cfg.sel),
            rounds=2,
        )

    def test_optimized_codec_sort(self, benchmark, inputs):
        sys, cfg, pi, pj = inputs
        TIMES["fmt_codec"] = _median(
            benchmark,
            lambda: format_neighbors(sys, pi, pj, cfg.rcut, cfg.sel,
                                     use_compression=True),
        )

    def test_optimized_record_sort(self, benchmark, inputs):
        sys, cfg, pi, pj = inputs
        TIMES["fmt_record"] = _median(
            benchmark,
            lambda: format_neighbors(sys, pi, pj, cfg.rcut, cfg.sel,
                                     use_compression=False),
        )


class TestGranularity:
    """Embedding input gather: branch-per-neighbor vs padded block."""

    @pytest.fixture(scope="class")
    def fmt_and_env(self, inputs):
        sys, cfg, pi, pj = inputs
        fmt = format_neighbors(sys, pi, pj, cfg.rcut, cfg.sel)
        em, _ed, _rij = environment_op(sys, fmt, cfg.rcut_smth, cfg.rcut)
        return fmt, em

    def test_branching_gather(self, benchmark, fmt_and_env):
        fmt, em = fmt_and_env
        slot_types = fmt.slot_types()

        def branchy():
            # per-slot branching on type — the pattern the layout removes
            out = [[] for _ in fmt.sel]
            nloc, nnei = fmt.nlist.shape
            for i in range(nloc):
                for jj in range(nnei):
                    if fmt.nlist[i, jj] == PAD:
                        continue
                    t = slot_types[jj]
                    out[t].append(em[i, jj, 0])
            return [np.asarray(o) for o in out]

        TIMES["gather_branch"] = _median(benchmark, branchy, rounds=2)

    def test_padded_block_gather(self, benchmark, fmt_and_env):
        fmt, em = fmt_and_env

        def blocked():
            # contiguous per-type blocks — no branching, one slice per type
            out = []
            for t, s in enumerate(fmt.sel):
                start = fmt.sel_start[t]
                out.append(em[:, start : start + s, 0].reshape(-1))
            return out

        TIMES["gather_block"] = _median(benchmark, blocked)


def test_zz_report(benchmark, inputs):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    required = {"fmt_aos", "fmt_codec", "fmt_record", "gather_branch",
                "gather_block"}
    assert required <= TIMES.keys()
    print_header("Sec 5.2 — neighbor layout & codec ablation")
    fmt_speedup = TIMES["fmt_aos"] / TIMES["fmt_codec"]
    codec_speedup = TIMES["fmt_record"] / TIMES["fmt_codec"]
    gather_speedup = TIMES["gather_branch"] / TIMES["gather_block"]
    print(f"AoS+tuple-sort formatter : {TIMES['fmt_aos']*1e3:8.2f} ms")
    print(f"vectorized, record sort  : {TIMES['fmt_record']*1e3:8.2f} ms")
    print(f"vectorized, 64-bit codec : {TIMES['fmt_codec']*1e3:8.2f} ms")
    print(f"  formatter speedup (codec vs AoS): {fmt_speedup:6.1f}x")
    print(f"  codec vs record sort:             {codec_speedup:6.2f}x "
          f"(paper: 'comparisons halved')")
    print(f"branching embedding gather: {TIMES['gather_branch']*1e3:8.2f} ms")
    print(f"padded block gather       : {TIMES['gather_block']*1e3:8.2f} ms")
    print(f"  granularity speedup: {gather_speedup:6.1f}x")

    # The formatter gain grows with system size (per-record Python overhead
    # vs one vectorized sort); at this 192-atom cell it is a modest win.
    # Wall-clock ratios are median-based and still host-dependent, so the
    # thresholds honor the REPRO_BENCH_STRICT=0 escape hatch for noisy CI.
    if bench_strict():
        assert fmt_speedup > 1.5
        assert codec_speedup > 0.9  # scalar keys at least match record sorting
        assert gather_speedup > 10  # branch removal is the big win
