"""Tests for the Summit performance model: FLOP counts validated against the
instrumented executor, ghost geometry validated against the real
decomposition, and scaling shapes validated against the paper's tables."""

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs
from repro.parallel import DomainDecomposition, SimComm
from repro.perfmodel import (
    COPPER_SPEC,
    SUMMIT,
    WATER_SPEC,
    decompose_gpus,
    dp_flops_per_atom,
    ghost_count,
    step_time,
    strong_scaling,
    table1_rows,
    table4_rows,
    weak_scaling,
)
from repro.perfmodel.flops import gemm_fraction
from repro.perfmodel.scaling import (
    COPPER_STRONG_ATOMS,
    COPPER_WEAK_ATOMS_PER_NODE,
    FIG5_COPPER_NODES,
    FIG5_PAPER_COPPER_DOUBLE,
    FIG5_PAPER_WATER_DOUBLE,
    FIG5_WATER_NODES,
    FIG6_PAPER_COPPER_DOUBLE,
    FIG6_PAPER_WATER_DOUBLE,
    FIG6_WATER_NODES,
    WATER_STRONG_ATOMS,
    WATER_WEAK_ATOMS_PER_NODE,
)


class TestMachine:
    def test_node_peak_matches_paper(self):
        # Sec 6.2: 7*6 + 2*0.5 = 43 TFLOPS per node
        assert SUMMIT.node_peak_fp64() == pytest.approx(43e12, rel=1e-3)

    def test_full_machine_peak(self):
        # ~200 PFLOPS quoted for 4608 nodes
        assert SUMMIT.peak_fp64(4608) == pytest.approx(198e15, rel=0.02)

    def test_unknown_precision_raises(self):
        with pytest.raises(ValueError):
            SUMMIT.gpu_peak("half")


class TestFlops:
    def test_water_flops_match_paper_quote(self):
        """Sec 6.1: 124.83 PFLOPs for 500 steps (501 evals) of 12,582,912
        atoms -> 1.98e7 FLOPs/atom/step."""
        per_atom = dp_flops_per_atom(DPConfig.paper_water()).per_step()
        paper = 124.83e15 / 501 / 12_582_912
        assert per_atom == pytest.approx(paper, rel=0.15)

    def test_copper_flops_match_paper_quote(self):
        """Sec 6.1: 835.53 PFLOPs for 500 steps of 25,739,424 atoms."""
        per_atom = dp_flops_per_atom(DPConfig.paper_copper()).per_step()
        paper = 835.53e15 / 501 / 25_739_424
        assert per_atom == pytest.approx(paper, rel=0.25)

    def test_copper_to_water_ratio(self):
        """Sec 6.1: copper is ~3.5x water per atom (larger neighbor count)."""
        ratio = (
            dp_flops_per_atom(DPConfig.paper_copper()).per_step()
            / dp_flops_per_atom(DPConfig.paper_water()).per_step()
        )
        assert 2.5 < ratio < 4.0

    def test_analytic_count_matches_executor(self):
        """The forward FLOPs agree with the tfmini profiler's counted FLOPs."""
        import repro.tfmini as tf

        cfg = DPConfig.tiny()
        model = DeepPot(cfg)
        sys = water_box((3, 3, 3), seed=0)
        pi, pj = neighbor_pairs(sys, cfg.rcut)
        model.session = tf.Session(profile=True)
        model.evaluate(sys, pi, pj)
        counted = model.session.stats.total_flops()
        analytic = dp_flops_per_atom(cfg)
        # full graph = forward + backward-to-R~ + prod ops; compare against
        # forward*(1+backward) without the instruction-mix calibration
        expected = analytic.forward * (1 + 2.0) * sys.n_atoms
        assert counted == pytest.approx(expected, rel=0.45)

    def test_gemm_fraction_dominant_for_both_systems(self):
        """Fig 3: GEMM dominates the op mix (63% water / 74% copper by time;
        by FLOPs the share is higher still).  The measured time breakdown is
        produced by benchmarks/test_fig3_op_breakdown.py; here we check the
        analytic FLOP share is GEMM-dominated and sane."""
        fw = gemm_fraction(DPConfig.paper_water())
        fc = gemm_fraction(DPConfig.paper_copper())
        assert 0.6 < fw < 0.99
        assert 0.6 < fc < 0.99


class TestGhostGeometry:
    def test_decompose_gpus_factors(self):
        for n in (6, 480, 27360, 17):
            px, py, pz = decompose_gpus(n)
            assert px * py * pz == n

    def test_near_cubic(self):
        px, py, pz = decompose_gpus(512)
        assert sorted((px, py, pz)) == [8, 8, 8]

    def test_table4_ghost_counts_within_a_few_percent(self):
        from repro.perfmodel.scaling import TABLE4_PAPER

        for gpus, paper in TABLE4_PAPER.items():
            model = ghost_count(12_582_912, gpus, WATER_SPEC)
            assert model == pytest.approx(paper[1], rel=0.08), gpus

    def test_ghost_geometry_matches_real_decomposition(self):
        """Analytic shell volume vs actual ghost atoms from repro.parallel.

        The shell formula assumes the ghost shell does not wrap onto itself,
        so the box must be comfortably larger than domain + 2*cutoff."""
        sys = water_box((8, 8, 8), seed=0)  # 1536 atoms, 24.8 Å box
        comm = SimComm(8)
        decomp = DomainDecomposition((2, 2, 2), comm)
        decomp.assign_atoms(sys)
        gc = 3.0
        decomp.build_ghost_lists(sys.box, gc)
        real = decomp.ghost_counts().mean()

        spec_like = WATER_SPEC.__class__(
            name="test",
            flops_per_atom_step=1.0,
            number_density=sys.n_atoms / sys.box.volume,
            ghost_cutoff=gc,
            gemm_efficiency=0.4,
            timestep_fs=0.5,
        )
        analytic = ghost_count(sys.n_atoms, 8, spec_like)
        assert analytic == pytest.approx(real, rel=0.25)


class TestStepTime:
    def test_components_positive_and_sum(self):
        parts = step_time(12_582_912, 480, WATER_SPEC)
        comp_sum = (
            parts["t_compute"] + parts["t_fixed"] + parts["t_ghost"] + parts["t_comm"]
        )
        assert parts["t_step"] == pytest.approx(comp_sum)
        assert all(parts[k] > 0 for k in ("t_compute", "t_fixed", "t_ghost", "t_comm"))

    def test_compute_dominates_at_large_atoms_per_gpu(self):
        parts = step_time(12_582_912, 480, WATER_SPEC)
        assert parts["t_compute"] > 0.8 * parts["t_step"]

    def test_overhead_dominates_at_small_atoms_per_gpu(self):
        parts = step_time(12_582_912, 27360, WATER_SPEC)
        assert parts["t_compute"] < 0.5 * parts["t_step"]

    def test_mixed_precision_speedup_about_1_5x(self):
        d = step_time(25_739_424, 3420, COPPER_SPEC, "double")
        m = step_time(25_739_424, 3420, COPPER_SPEC, "mixed")
        assert 1.3 < d["t_step"] / m["t_step"] < 1.8


class TestScalingShapes:
    def test_table4_matches_paper_within_tolerance(self):
        for row in table4_rows():
            paper = row["paper"]
            assert row["md_loop_time"] == pytest.approx(paper[2], rel=0.20)
            assert row["efficiency"] == pytest.approx(paper[3], abs=0.06)
            assert row["pflops"] == pytest.approx(paper[4], rel=0.15)
            assert row["percent_peak"] == pytest.approx(paper[5], rel=0.20)

    def test_table4_efficiency_collapses_below_1000_atoms(self):
        rows = table4_rows()
        big = [r for r in rows if r["atoms_per_gpu"] > 10000]
        small = [r for r in rows if r["atoms_per_gpu"] < 1000]
        assert all(r["efficiency"] > 0.9 for r in big)
        assert all(r["efficiency"] < 0.6 for r in small)

    def test_fig5_water_strong_scaling(self):
        pts = strong_scaling(WATER_SPEC, WATER_STRONG_ATOMS, FIG5_WATER_NODES)
        for p in pts:
            ref_pflops, ref_ms = FIG5_PAPER_WATER_DOUBLE[p.n_nodes]
            assert p.pflops == pytest.approx(ref_pflops, rel=0.20), p.n_nodes
            assert p.t_step * 1e3 == pytest.approx(ref_ms, rel=0.25), p.n_nodes

    def test_fig5_copper_strong_scaling(self):
        pts = strong_scaling(COPPER_SPEC, COPPER_STRONG_ATOMS, FIG5_COPPER_NODES)
        for p in pts:
            ref_pflops, ref_ms = FIG5_PAPER_COPPER_DOUBLE[p.n_nodes]
            assert p.pflops == pytest.approx(ref_pflops, rel=0.20), p.n_nodes
        # copper keeps >70% efficiency at full machine (paper: 81.6%)
        assert pts[-1].efficiency > 0.70

    def test_fig6_weak_scaling_is_linear(self):
        for spec, per_node, refs in (
            (WATER_SPEC, WATER_WEAK_ATOMS_PER_NODE, FIG6_PAPER_WATER_DOUBLE),
            (COPPER_SPEC, COPPER_WEAK_ATOMS_PER_NODE, FIG6_PAPER_COPPER_DOUBLE),
        ):
            pts = weak_scaling(spec, per_node, FIG6_WATER_NODES)
            for p in pts:
                assert p.pflops == pytest.approx(refs[p.n_nodes], rel=0.12)
                assert p.efficiency > 0.97  # near-perfect weak scaling

    def test_mixed_beats_double_everywhere(self):
        d = weak_scaling(COPPER_SPEC, COPPER_WEAK_ATOMS_PER_NODE, FIG6_WATER_NODES)
        m = weak_scaling(
            COPPER_SPEC, COPPER_WEAK_ATOMS_PER_NODE, FIG6_WATER_NODES, "mixed"
        )
        for pd, pm in zip(d, m):
            assert 1.3 < pd.t_step / pm.t_step < 1.8

    def test_headline_time_to_solution(self):
        """The abstract's claims: 7.3e-10 s/step/atom for 113M Cu; ns/day."""
        rows = table1_rows()
        cu = next(r for r in rows if r["system"] == "Cu")
        assert cu["tts_model"] == pytest.approx(7.3e-10, rel=0.15)
        h2o = next(r for r in rows if r["system"] == "H2O")
        assert h2o["tts_model"] == pytest.approx(2.7e-10, rel=0.15)

    def test_nanosecond_per_day_claim(self):
        """113M-atom copper: 1 ns in <= ~1 day (paper: 23 h double)."""
        pts = strong_scaling(COPPER_SPEC, 113_246_208, [4560])
        hours_per_ns = pts[0].t_step * 1e6 / 3600  # 1e6 steps at 1 fs
        assert 15 < hours_per_ns < 30

    def test_thousandfold_improvement_over_prior_art(self):
        """The justification claim: >1000x vs state of the art (CONQUEST)."""
        rows = table1_rows()
        cu = next(r for r in rows if r["system"] == "Cu")
        conquest_tts = 4.0e-3
        assert conquest_tts / cu["tts_model"] > 1000
