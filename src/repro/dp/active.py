"""Concurrent learning (DP-GEN, the paper's ref [68]).

The paper's models were produced by an active-learning loop: train an
ensemble of DP models from different seeds, explore configuration space with
DP-driven MD, and harvest configurations where the ensemble disagrees (the
"model deviation" criterion) for new ab initio labeling.  This module
reproduces that loop against the oracle potentials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.dp.data import Dataset, label_frames
from repro.dp.model import DeepPot, DPConfig
from repro.dp.pair import DeepPotPair
from repro.dp.train import TrainConfig, Trainer
from repro.md.integrators import Langevin
from repro.md.neighbor import neighbor_pairs
from repro.md.potential import Potential
from repro.md.simulation import Simulation
from repro.md.system import System
from repro.md.velocity import boltzmann_velocities


@dataclass
class ModelEnsemble:
    """N independently initialised DP models sharing one dataset."""

    config: DPConfig
    n_models: int = 4
    models: list[DeepPot] = field(default_factory=list)

    def __post_init__(self):
        if not self.models:
            self.models = [
                DeepPot(self.config, rng=np.random.default_rng(1000 + 17 * k))
                for k in range(self.n_models)
            ]

    def train_all(self, dataset: Dataset, train_config: TrainConfig) -> None:
        for k, model in enumerate(self.models):
            dataset.apply_stats(model)
            cfg = TrainConfig(**{**train_config.__dict__, "seed": train_config.seed + k})
            Trainer(model, dataset, cfg).train()

    def force_deviation(self, system: System) -> float:
        """Max-over-atoms std-over-models of the force — DP-GEN's criterion."""
        pi, pj = neighbor_pairs(system, self.config.rcut)
        forces = np.stack(
            [m.evaluate(system, pi, pj).forces for m in self.models]
        )  # (n_models, N, 3)
        mean = forces.mean(axis=0)
        var = ((forces - mean) ** 2).mean(axis=0).sum(axis=1)  # per-atom
        return float(np.sqrt(var).max())


@dataclass
class ActiveLearner:
    """The DP-GEN loop: explore -> select -> label -> retrain.

    Configurations whose ensemble force deviation falls inside
    [trust_lo, trust_hi] are "candidates" (inaccurate but not unphysical) and
    get oracle labels; below trust_lo the models already agree, above
    trust_hi the configuration is discarded as garbage — the standard DP-GEN
    selection windows.
    """

    ensemble: ModelEnsemble
    oracle: Potential
    trust_lo: float = 0.05  # eV/Å
    trust_hi: float = 0.50
    md_steps: int = 100
    md_stride: int = 10
    temperature: float = 330.0
    dt: float = 0.0005
    seed: int = 0

    def explore(self, start: System) -> list[System]:
        """DP-driven MD with the first ensemble member; harvest snapshots."""
        from repro.md.neighbor import fitted_neighbor_list

        sysw = start.copy()
        boltzmann_velocities(sysw, self.temperature, seed=self.seed)
        pair = DeepPotPair(self.ensemble.models[0])
        sim = Simulation(
            sysw,
            pair,
            dt=self.dt,
            integrator=Langevin(
                temperature=self.temperature, damp=0.1, seed=self.seed
            ),
            neighbor=fitted_neighbor_list(sysw, pair.cutoff),
        )
        frames: list[System] = []
        for _ in range(self.md_steps // self.md_stride):
            sim.run(self.md_stride)
            frames.append(sysw.copy())
        return frames

    def select(self, frames: Sequence[System]) -> tuple[list[System], dict]:
        """Split explored frames into accurate / candidate / failed."""
        stats = {"accurate": 0, "candidate": 0, "failed": 0}
        candidates: list[System] = []
        for frame in frames:
            dev = self.ensemble.force_deviation(frame)
            if dev < self.trust_lo:
                stats["accurate"] += 1
            elif dev <= self.trust_hi:
                stats["candidate"] += 1
                candidates.append(frame)
            else:
                stats["failed"] += 1
        return candidates, stats

    def iteration(
        self, dataset: Dataset, start: System, train_config: TrainConfig
    ) -> dict:
        """One full DP-GEN cycle; mutates ``dataset`` in place."""
        frames = self.explore(start)
        candidates, stats = self.select(frames)
        if candidates:
            labeled = label_frames(candidates, self.oracle)
            for f in labeled.frames:
                dataset.add(f)
            self.ensemble.train_all(dataset, train_config)
        stats["n_added"] = len(candidates)
        stats["dataset_size"] = len(dataset)
        return stats
