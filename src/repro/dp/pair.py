"""``pair_style deepmd`` — the adapter that plugs DeepPot into repro.md.

Mirrors the paper's Sec 5.4 design: LAMMPS (repro.md) owns the atoms and the
spatial bookkeeping; the DP model replaces the EFF force computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.model import DeepPot
from repro.md.potential import Potential, PotentialResult
from repro.md.system import System


@dataclass
class DeepPotPair(Potential):
    """Potential interface around a DeepPot model.

    ``compute`` feeds the shared :class:`~repro.dp.backend.ForceBackend`
    seam as a one-frame workload (an R=1 shape bucket over the model's
    default engine), so the serial ``Simulation`` driver goes through the
    exact layer the ensemble and distributed drivers batch into;
    ``compute_batch`` submits the whole frame stack at once.
    """

    model: DeepPot
    backend: str = "optimized"

    def __post_init__(self):
        self.cutoff = self.model.config.rcut
        self._force_backend = None

    @property
    def force_backend(self):
        """The pair style's :class:`~repro.dp.backend.ForceBackend` (lazy).

        Built over the model's default engine, so counters/plan stats
        observed through ``model.batched`` keep describing this driver.
        """
        if self._force_backend is None:
            from repro.dp.backend import ForceBackend

            self._force_backend = ForceBackend(
                self.model, engine=self.model.batched, op_backend=self.backend
            )
        return self._force_backend

    def compute(
        self, system: System, pair_i: np.ndarray, pair_j: np.ndarray
    ) -> PotentialResult:
        from repro.dp.backend import ForceFrame

        return self.force_backend.evaluate(
            [ForceFrame(system, pair_i, pair_j)]
        )[0]

    def compute_batch(
        self, systems, pair_lists
    ) -> list[PotentialResult]:
        """Fused evaluation of R frames (bucketed by shape)."""
        from repro.dp.backend import ForceFrame

        return self.force_backend.evaluate(
            [
                ForceFrame(s, pi, pj)
                for s, (pi, pj) in zip(systems, pair_lists)
            ]
        )
