"""repro.md — a LAMMPS-like molecular dynamics substrate.

DeePMD-kit delegates atom bookkeeping, neighbor lists, integration, and
thermodynamic output to LAMMPS; this package provides the same contract for
the reproduction:

* :mod:`repro.md.box` / :mod:`repro.md.system` — orthorhombic periodic cell
  and the mutable atomic state;
* :mod:`repro.md.neighbor` — cell-list / O(N^2) neighbor lists with a Verlet
  skin and the paper's rebuild-every-N policy;
* :mod:`repro.md.velocity` — Boltzmann velocity initialisation (Sec 6.1);
* :mod:`repro.md.integrators` — velocity-Verlet plus Langevin/Berendsen
  thermostats;
* :mod:`repro.md.thermo` — kinetic energy, temperature, pressure from the
  virial, collected every N steps as in the paper;
* :mod:`repro.md.deform` — box deformation fix for the Fig 7 tensile run;
* :mod:`repro.md.potential` — the pair-style interface DP plugs into, plus a
  Lennard-Jones empirical force field baseline (:mod:`repro.md.lj`);
* :mod:`repro.md.simulation` — the serial MD driver;
* :mod:`repro.md.ensemble` — lockstep multi-replica MD through the batched
  DP evaluation engine (fused force evaluations, per-replica state).
"""

from repro.md.box import Box
from repro.md.system import System
from repro.md.neighbor import NeighborList, fitted_neighbor_list, neighbor_pairs
from repro.md.velocity import boltzmann_velocities
from repro.md.integrators import VelocityVerlet, Langevin, Berendsen, NoseHoover
from repro.md.thermo import ThermoState, compute_thermo
from repro.md.deform import Deform
from repro.md.barostat import BerendsenBarostat
from repro.md.minimize import fire_minimize, FireResult
from repro.md.potential import Potential, PotentialResult
from repro.md.lj import LennardJones
from repro.md.simulation import Simulation
from repro.md.ensemble import EnsembleSimulation
from repro.md.dump import read_xyz, write_lammps_data, write_xyz

__all__ = [
    "Box",
    "System",
    "NeighborList",
    "fitted_neighbor_list",
    "neighbor_pairs",
    "boltzmann_velocities",
    "VelocityVerlet",
    "Langevin",
    "Berendsen",
    "NoseHoover",
    "ThermoState",
    "compute_thermo",
    "Deform",
    "BerendsenBarostat",
    "fire_minimize",
    "FireResult",
    "Potential",
    "PotentialResult",
    "LennardJones",
    "Simulation",
    "EnsembleSimulation",
    "read_xyz",
    "write_xyz",
    "write_lammps_data",
]
